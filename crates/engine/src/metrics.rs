//! The engine's telemetry plane: a registry of atomic counters and
//! log-scale latency histograms, plus the typed [`MetricsSnapshot`] read
//! surface.
//!
//! # Design
//!
//! Telemetry is **purely observational**: every instrumentation point reads
//! state the engine computes anyway (tick outcomes, ingest reports) or
//! wall-clock time, and writes only to relaxed atomics.  Outcomes are
//! bit-identical with telemetry enabled or disabled, at one thread or the
//! full pool — the determinism suite asserts this.
//!
//! Two switches control cost:
//!
//! * **Compile time** — the `telemetry` cargo feature (default on).  With
//!   `--no-default-features` the [`Metrics`] registry is a zero-sized type
//!   and every recording method is an empty inline function; the engine
//!   carries no telemetry atomics at all.
//! * **Run time** — [`Metrics::set_enabled`].  Disabled, the timer helpers
//!   return `None` and the per-op clock reads are skipped; counter updates
//!   (a relaxed `fetch_add` on data already in hand) are cheap enough to
//!   leave unconditional.
//!
//! Latencies go into [`plis_telemetry::AtomicHistogram`]s (fixed log-scale
//! buckets, ≤ 6.25 % relative error, lock-free merge), counters into
//! [`plis_telemetry::Counter`]s.  [`MetricsSnapshot`] is *always* compiled
//! — a telemetry-off build still hands benches a well-typed (all-zero)
//! snapshot, so downstream wiring never needs the feature gate.

use plis_telemetry::{json_line, HistogramSnapshot, JsonValue};

/// Per-tick digest of the path/delta counters derived from one
/// [`TickOutcome`](crate::TickOutcome) — what the tick recorder just
/// added to the cumulative registry, returned so the trace sink can
/// stamp the individual tick without re-deriving it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickDigest {
    /// Ingests that took the sequential path in this tick.
    pub seq_ingests: u64,
    /// Ingests that took the parallel merge path in this tick.
    pub par_merge_ingests: u64,
    /// Total size of the parallel merge runs (`tails ++ batch` /
    /// `frontier ++ batch`) in this tick.
    pub par_merge_elems: u64,
    /// Elements moved through the vEB tail-set batch delta
    /// (`batch_insert` + `batch_delete` sizes) in this tick.
    pub veb_delta_elems: u64,
    /// Weighted parallel ingests whose dominant-max store resolved to the
    /// range tree (counts `Auto` picks and forced kinds alike).
    pub dommax_tree_picks: u64,
    /// Weighted parallel ingests whose dominant-max store resolved to the
    /// range vEB.
    pub dommax_veb_picks: u64,
    /// Unweighted parallel ingests whose tail-set delta went to the vEB
    /// mirror (counts `Backend::Auto` picks and the forced backend alike).
    pub tailset_veb_picks: u64,
    /// Unweighted parallel ingests whose tail-set delta resolved to the
    /// stateless sorted-vec probe.
    pub tailset_sorted_picks: u64,
}

#[cfg(feature = "telemetry")]
mod real {
    use super::{MetricsSnapshot, TickDigest};
    use crate::op::{OpOutput, ReadOutcome, TickOutcome};
    use crate::session::IngestPath;
    use plis_telemetry::{AtomicHistogram, Counter};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    /// Derive the path/delta digest for one executed tick by walking its
    /// per-op reports.  Pure function of the outcome, so the trace sink
    /// sees exactly what the registry accumulated.
    fn digest_of(outcome: &TickOutcome) -> TickDigest {
        let mut d = TickDigest::default();
        for (_, result) in &outcome.outcomes {
            let Ok(OpOutput::Appended(report)) = result else { continue };
            match report {
                crate::BatchReport::Unweighted(r) => match r.path {
                    IngestPath::Sequential => d.seq_ingests += 1,
                    IngestPath::ParallelMerge => {
                        d.par_merge_ingests += 1;
                        // The merge run is `tails ++ batch`.
                        d.par_merge_elems += u64::from(r.lis_before) + r.ingested as u64;
                        d.veb_delta_elems += (r.tail_inserts + r.tail_removals) as u64;
                        match r.tail_store {
                            Some(plis_lis::TailRoute::Veb) => d.tailset_veb_picks += 1,
                            Some(plis_lis::TailRoute::SortedVec) => d.tailset_sorted_picks += 1,
                            None => {}
                        }
                    }
                },
                crate::BatchReport::Weighted(r) => match r.path {
                    IngestPath::Sequential => d.seq_ingests += 1,
                    IngestPath::ParallelMerge => {
                        d.par_merge_ingests += 1;
                        // The driver issues one dominant-max query per
                        // element of the `frontier ++ batch` run, so the
                        // query count *is* the merge size.
                        d.par_merge_elems += r.dommax_queries;
                        match r.dommax_used {
                            Some(plis_lis::DominantMaxKind::RangeVeb) => d.dommax_veb_picks += 1,
                            Some(_) => d.dommax_tree_picks += 1,
                            None => {}
                        }
                    }
                },
            }
        }
        d
    }

    /// The telemetry registry: cumulative counters and latency histograms
    /// for one [`crate::Engine`].  All updates are relaxed atomics — safe
    /// to hit from every worker thread of a tick with no synchronization
    /// beyond the counters themselves.
    #[derive(Debug, Default)]
    pub struct Metrics {
        enabled: AtomicBool,
        ticks: Counter,
        read_ticks: Counter,
        ops_appended: Counter,
        ops_queried: Counter,
        ops_created: Counter,
        ops_removed: Counter,
        ops_snapshotted: Counter,
        ops_restored: Counter,
        ops_failed: Counter,
        elems_ingested: Counter,
        queries_answered: Counter,
        seq_ingests: Counter,
        par_merge_ingests: Counter,
        par_merge_elems: Counter,
        veb_delta_elems: Counter,
        dommax_queries: Counter,
        dommax_writeback_elems: Counter,
        dommax_tree_picks: Counter,
        dommax_veb_picks: Counter,
        tailset_veb_picks: Counter,
        tailset_sorted_picks: Counter,
        inline_ticks: Counter,
        inline_read_ticks: Counter,
        tick_ns: AtomicHistogram,
        read_ns: AtomicHistogram,
        op_ns: AtomicHistogram,
    }

    impl Metrics {
        /// A fresh registry, enabled.
        pub fn new() -> Self {
            let m = Metrics::default();
            m.enabled.store(true, Ordering::Relaxed);
            m
        }

        /// Turn recording on or off at runtime.  Disabled, the timer
        /// helpers return `None` (no clock reads on the hot path);
        /// outcomes are unaffected either way.
        pub fn set_enabled(&self, enabled: bool) {
            self.enabled.store(enabled, Ordering::Relaxed);
        }

        /// Whether the registry is currently recording.
        pub fn is_enabled(&self) -> bool {
            self.enabled.load(Ordering::Relaxed)
        }

        /// Start a wall-clock timer, or `None` when disabled.
        #[inline]
        pub(crate) fn start_timer(&self) -> Option<Instant> {
            if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            }
        }

        /// Nanoseconds since `started` (0 when the timer never started).
        #[inline]
        pub(crate) fn elapsed_ns(started: Option<Instant>) -> u64 {
            started.map_or(0, |t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
        }

        /// Record one op's latency from its timer (no-op if disabled).
        #[inline]
        pub(crate) fn record_op_since(&self, started: Option<Instant>) {
            if let Some(t) = started {
                self.op_ns.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }

        /// Fold one executed write tick into the registry (counters from
        /// the outcome's per-op reports, latency from `elapsed_ns`) and
        /// return the tick's own path digest for the trace sink.
        /// `inline` says whether the executor processed the tick on the
        /// calling thread instead of the per-shard parallel spine.
        pub(crate) fn record_tick(&self, outcome: &TickOutcome, inline: bool) -> TickDigest {
            if !self.is_enabled() {
                return TickDigest::default();
            }
            self.ticks.inc();
            if inline {
                self.inline_ticks.inc();
            }
            if outcome.elapsed_ns != 0 {
                self.tick_ns.record(outcome.elapsed_ns);
            }
            self.elems_ingested.add(outcome.total_ingested as u64);
            self.queries_answered.add(outcome.total_queries as u64);
            self.ops_failed.add(outcome.failed_ops as u64);
            for (_, result) in &outcome.outcomes {
                match result {
                    Ok(OpOutput::Appended(report)) => {
                        self.ops_appended.inc();
                        if let crate::BatchReport::Weighted(r) = report {
                            self.dommax_queries.add(r.dommax_queries);
                            self.dommax_writeback_elems.add(r.dommax_writeback_elems);
                        }
                    }
                    Ok(OpOutput::Answered(_)) => self.ops_queried.inc(),
                    Ok(OpOutput::Created) => self.ops_created.inc(),
                    Ok(OpOutput::Removed) => self.ops_removed.inc(),
                    Ok(OpOutput::Snapshotted(_)) => self.ops_snapshotted.inc(),
                    Ok(OpOutput::Restored) => self.ops_restored.inc(),
                    Err(_) => {}
                }
            }
            let digest = digest_of(outcome);
            self.seq_ingests.add(digest.seq_ingests);
            self.par_merge_ingests.add(digest.par_merge_ingests);
            self.par_merge_elems.add(digest.par_merge_elems);
            self.veb_delta_elems.add(digest.veb_delta_elems);
            self.dommax_tree_picks.add(digest.dommax_tree_picks);
            self.dommax_veb_picks.add(digest.dommax_veb_picks);
            self.tailset_veb_picks.add(digest.tailset_veb_picks);
            self.tailset_sorted_picks.add(digest.tailset_sorted_picks);
            digest
        }

        /// Fold one executed read tick into the registry.  `inline` as in
        /// [`Metrics::record_tick`].
        pub(crate) fn record_read(&self, outcome: &ReadOutcome, inline: bool) {
            if !self.is_enabled() {
                return;
            }
            self.read_ticks.inc();
            if inline {
                self.inline_read_ticks.inc();
            }
            if outcome.elapsed_ns != 0 {
                self.read_ns.record(outcome.elapsed_ns);
            }
            self.queries_answered.add(outcome.total_queries as u64);
            for (_, result) in &outcome.outcomes {
                match result {
                    Ok(_) => self.ops_queried.inc(),
                    Err(_) => self.ops_failed.inc(),
                }
            }
        }

        /// Cumulative totals as a plain-data snapshot.  Session/memory
        /// fields are zero here; [`crate::Engine::metrics_snapshot`] fills
        /// them by walking the shards.
        pub(crate) fn counters_snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot {
                ticks: self.ticks.get(),
                read_ticks: self.read_ticks.get(),
                ops_appended: self.ops_appended.get(),
                ops_queried: self.ops_queried.get(),
                ops_created: self.ops_created.get(),
                ops_removed: self.ops_removed.get(),
                ops_snapshotted: self.ops_snapshotted.get(),
                ops_restored: self.ops_restored.get(),
                ops_failed: self.ops_failed.get(),
                elems_ingested: self.elems_ingested.get(),
                queries_answered: self.queries_answered.get(),
                seq_ingests: self.seq_ingests.get(),
                par_merge_ingests: self.par_merge_ingests.get(),
                par_merge_elems: self.par_merge_elems.get(),
                veb_delta_elems: self.veb_delta_elems.get(),
                dommax_queries: self.dommax_queries.get(),
                dommax_writeback_elems: self.dommax_writeback_elems.get(),
                dommax_tree_picks: self.dommax_tree_picks.get(),
                dommax_veb_picks: self.dommax_veb_picks.get(),
                tailset_veb_picks: self.tailset_veb_picks.get(),
                tailset_sorted_picks: self.tailset_sorted_picks.get(),
                inline_ticks: self.inline_ticks.get(),
                inline_read_ticks: self.inline_read_ticks.get(),
                tick_latency: self.tick_ns.snapshot(),
                read_latency: self.read_ns.snapshot(),
                op_latency: self.op_ns.snapshot(),
                sessions: 0,
                session_bytes: 0,
                shard_bytes: Vec::new(),
                alloc_count: 0,
                allocs_per_elem: 0,
                arena_bytes: 0,
            }
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod noop {
    use super::{MetricsSnapshot, TickDigest};
    use crate::op::{ReadOutcome, TickOutcome};
    use std::time::Instant;

    /// The no-op registry compiled when the `telemetry` feature is off:
    /// zero-sized, every method an empty inline function.
    #[derive(Debug, Default)]
    pub struct Metrics;

    impl Metrics {
        /// A fresh (inert) registry.
        pub fn new() -> Self {
            Metrics
        }

        /// No-op; the feature-off registry never records.
        pub fn set_enabled(&self, _enabled: bool) {}

        /// Always `false` without the `telemetry` feature.
        pub fn is_enabled(&self) -> bool {
            false
        }

        #[inline]
        pub(crate) fn start_timer(&self) -> Option<Instant> {
            None
        }

        #[inline]
        pub(crate) fn elapsed_ns(_started: Option<Instant>) -> u64 {
            0
        }

        #[inline]
        pub(crate) fn record_op_since(&self, _started: Option<Instant>) {}

        pub(crate) fn record_tick(&self, _outcome: &TickOutcome, _inline: bool) -> TickDigest {
            TickDigest::default()
        }

        pub(crate) fn record_read(&self, _outcome: &ReadOutcome, _inline: bool) {}

        pub(crate) fn counters_snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::default()
        }
    }
}

#[cfg(feature = "telemetry")]
pub use real::Metrics;

#[cfg(not(feature = "telemetry"))]
pub use noop::Metrics;

/// A point-in-time copy of the whole telemetry plane: cumulative counters,
/// latency histograms, and the per-shard memory accounting the engine
/// fills in at snapshot time.  Plain data — always compiled, `Clone`,
/// comparable, and serializable to the workspace's hand-rolled JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Write ticks executed ([`crate::Engine::execute`]).
    pub ticks: u64,
    /// Read ticks executed ([`crate::Engine::execute_read`]).
    pub read_ticks: u64,
    /// Append ops that succeeded.
    pub ops_appended: u64,
    /// Query ops that succeeded (write and read ticks combined).
    pub ops_queried: u64,
    /// Create-session ops that succeeded.
    pub ops_created: u64,
    /// Remove-session ops that succeeded.
    pub ops_removed: u64,
    /// Snapshot ops that succeeded ([`crate::Op::Snapshot`]).
    pub ops_snapshotted: u64,
    /// Restore ops that succeeded ([`crate::Op::Restore`]).
    pub ops_restored: u64,
    /// Ops that resolved to a typed error.
    pub ops_failed: u64,
    /// Elements ingested across all append ops.
    pub elems_ingested: u64,
    /// Individual queries answered across all query ops.
    pub queries_answered: u64,
    /// Ingests that took the sequential path.
    pub seq_ingests: u64,
    /// Ingests that took the parallel merge path.
    pub par_merge_ingests: u64,
    /// Total size of the parallel merge runs (`tails ++ batch` /
    /// `frontier ++ batch`).
    pub par_merge_elems: u64,
    /// Elements moved through the vEB tail-set batch delta
    /// (`batch_insert` + `batch_delete` sizes).
    pub veb_delta_elems: u64,
    /// Dominant-max point queries issued by weighted parallel ingests.
    pub dommax_queries: u64,
    /// Elements written back to dominant-max stores by those ingests.
    pub dommax_writeback_elems: u64,
    /// Weighted parallel ingests that resolved to the range-tree store.
    pub dommax_tree_picks: u64,
    /// Weighted parallel ingests that resolved to the range-vEB store.
    pub dommax_veb_picks: u64,
    /// Unweighted parallel ingests whose tail-set delta went to the vEB
    /// mirror.
    pub tailset_veb_picks: u64,
    /// Unweighted parallel ingests whose tail-set delta resolved to the
    /// sorted-vec probe.
    pub tailset_sorted_picks: u64,
    /// Write ticks light enough to run inline on the calling thread,
    /// skipping the per-shard parallel spine.
    pub inline_ticks: u64,
    /// Read ticks that ran inline.
    pub inline_read_ticks: u64,
    /// Write-tick wall-time histogram (nanoseconds).
    pub tick_latency: HistogramSnapshot,
    /// Read-tick wall-time histogram (nanoseconds).
    pub read_latency: HistogramSnapshot,
    /// Per-op wall-time histogram (nanoseconds).
    pub op_latency: HistogramSnapshot,
    /// Live sessions at snapshot time.
    pub sessions: u64,
    /// Approximate heap footprint of all live sessions, in bytes.
    pub session_bytes: u64,
    /// The same footprint broken down per shard (index = shard).
    pub shard_bytes: Vec<u64>,
    /// Heap allocations observed since the engine was constructed, read
    /// from [`plis_telemetry::allocmeter`] at snapshot time.  Zero unless
    /// the binary installs a counting global allocator
    /// (`plis-testalloc`) — production builds never pay for this.
    pub alloc_count: u64,
    /// `alloc_count / elems_ingested`, floored — the steady-state
    /// allocation discipline figure.  With per-session scratch arenas
    /// warm, ingest performs no per-element heap traffic and this is 0;
    /// the allocation-discipline tests and the streaming bench assert on
    /// it.  (Engine envelope allocations are `O(1)` per tick and vanish
    /// under the floor at any realistic batch size.)
    pub allocs_per_elem: u64,
    /// High-water bytes held by the per-session scratch arenas and flat
    /// rank indices across all live sessions (capacity, not length —
    /// this is the memory the zero-allocation steady state retains).
    pub arena_bytes: u64,
}

/// Nanoseconds to fractional microseconds for the JSON surface.
fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

impl MetricsSnapshot {
    /// Merge another snapshot's counters and histograms into this one
    /// (elementwise add; shard byte vectors are added index-wise).
    /// Associative and commutative, like the underlying histograms.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.ticks += other.ticks;
        self.read_ticks += other.read_ticks;
        self.ops_appended += other.ops_appended;
        self.ops_queried += other.ops_queried;
        self.ops_created += other.ops_created;
        self.ops_removed += other.ops_removed;
        self.ops_snapshotted += other.ops_snapshotted;
        self.ops_restored += other.ops_restored;
        self.ops_failed += other.ops_failed;
        self.elems_ingested += other.elems_ingested;
        self.queries_answered += other.queries_answered;
        self.seq_ingests += other.seq_ingests;
        self.par_merge_ingests += other.par_merge_ingests;
        self.par_merge_elems += other.par_merge_elems;
        self.veb_delta_elems += other.veb_delta_elems;
        self.dommax_queries += other.dommax_queries;
        self.dommax_writeback_elems += other.dommax_writeback_elems;
        self.dommax_tree_picks += other.dommax_tree_picks;
        self.dommax_veb_picks += other.dommax_veb_picks;
        self.tailset_veb_picks += other.tailset_veb_picks;
        self.tailset_sorted_picks += other.tailset_sorted_picks;
        self.inline_ticks += other.inline_ticks;
        self.inline_read_ticks += other.inline_read_ticks;
        self.tick_latency.merge(&other.tick_latency);
        self.read_latency.merge(&other.read_latency);
        self.op_latency.merge(&other.op_latency);
        self.sessions += other.sessions;
        self.session_bytes += other.session_bytes;
        if self.shard_bytes.len() < other.shard_bytes.len() {
            self.shard_bytes.resize(other.shard_bytes.len(), 0);
        }
        for (mine, theirs) in self.shard_bytes.iter_mut().zip(&other.shard_bytes) {
            *mine += theirs;
        }
        self.alloc_count += other.alloc_count;
        self.arena_bytes += other.arena_bytes;
        // A ratio, not a counter: recompute over the merged totals rather
        // than adding the per-snapshot floors.
        self.allocs_per_elem = self.alloc_count.checked_div(self.elems_ingested).unwrap_or(0);
    }

    /// One JSON object (no trailing newline) with every counter and the
    /// headline latency percentiles in microseconds — the same hand-rolled
    /// format the bench bins emit, so snapshot lines mix into their
    /// output.
    pub fn to_json_line(&self) -> String {
        json_line(&[
            ("ticks", JsonValue::from(self.ticks)),
            ("read_ticks", JsonValue::from(self.read_ticks)),
            ("ops_appended", JsonValue::from(self.ops_appended)),
            ("ops_queried", JsonValue::from(self.ops_queried)),
            ("ops_created", JsonValue::from(self.ops_created)),
            ("ops_removed", JsonValue::from(self.ops_removed)),
            ("ops_snapshotted", JsonValue::from(self.ops_snapshotted)),
            ("ops_restored", JsonValue::from(self.ops_restored)),
            ("ops_failed", JsonValue::from(self.ops_failed)),
            ("elems_ingested", JsonValue::from(self.elems_ingested)),
            ("queries_answered", JsonValue::from(self.queries_answered)),
            ("seq_ticks", JsonValue::from(self.seq_ingests)),
            ("par_merge_ticks", JsonValue::from(self.par_merge_ingests)),
            ("par_merge_elems", JsonValue::from(self.par_merge_elems)),
            ("veb_delta_elems", JsonValue::from(self.veb_delta_elems)),
            ("dommax_queries", JsonValue::from(self.dommax_queries)),
            ("dommax_writeback_elems", JsonValue::from(self.dommax_writeback_elems)),
            ("dommax_tree_picks", JsonValue::from(self.dommax_tree_picks)),
            ("dommax_veb_picks", JsonValue::from(self.dommax_veb_picks)),
            ("tailset_veb_picks", JsonValue::from(self.tailset_veb_picks)),
            ("tailset_sorted_picks", JsonValue::from(self.tailset_sorted_picks)),
            ("inline_ticks", JsonValue::from(self.inline_ticks)),
            ("inline_read_ticks", JsonValue::from(self.inline_read_ticks)),
            ("tick_p50_us", JsonValue::from(us(self.tick_latency.p50()))),
            ("tick_p90_us", JsonValue::from(us(self.tick_latency.p90()))),
            ("tick_p99_us", JsonValue::from(us(self.tick_latency.p99()))),
            ("tick_max_us", JsonValue::from(us(self.tick_latency.max))),
            ("read_p99_us", JsonValue::from(us(self.read_latency.p99()))),
            ("op_p99_us", JsonValue::from(us(self.op_latency.p99()))),
            ("sessions", JsonValue::from(self.sessions)),
            ("session_bytes", JsonValue::from(self.session_bytes)),
            ("alloc_count", JsonValue::from(self.alloc_count)),
            ("allocs_per_elem", JsonValue::from(self.allocs_per_elem)),
            ("arena_bytes", JsonValue::from(self.arena_bytes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merge_is_elementwise() {
        let mut a = MetricsSnapshot { ticks: 2, elems_ingested: 10, ..Default::default() };
        a.shard_bytes = vec![5, 7];
        let mut b = MetricsSnapshot { ticks: 3, session_bytes: 40, ..Default::default() };
        b.shard_bytes = vec![1, 2, 3];
        a.merge(&b);
        assert_eq!(a.ticks, 5);
        assert_eq!(a.elems_ingested, 10);
        assert_eq!(a.session_bytes, 40);
        assert_eq!(a.shard_bytes, vec![6, 9, 3]);
    }

    #[test]
    fn json_line_has_the_bench_fields() {
        let snap = MetricsSnapshot { ticks: 7, session_bytes: 1234, ..Default::default() };
        let line = snap.to_json_line();
        for key in ["\"ticks\": 7", "\"tick_p50_us\"", "\"tick_p99_us\"", "\"session_bytes\": 1234"]
        {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}
