//! A flat, allocation-friendly replacement for `Vec<Vec<usize>>` per-rank
//! frontiers.
//!
//! The streaming sessions maintain, for every rank `r`, the list of element
//! indices with dp value `r + 1`, in arrival (= increasing-index) order.
//! The obvious representation — one `Vec<usize>` per rank — costs a heap
//! allocation per rank plus repeated grows per list, and scatters the
//! frontier data across the heap, which shows up directly in the per-tick
//! allocation counts and the fleet-scaling sweeps.
//!
//! [`RankIndex`] stores every frontier in **one** `Vec<u32>` pool of chained
//! blocks.  A block is laid out inline as `[next, cap, entry_0 .. entry_{cap-1}]`
//! (`next == NONE` only matters for the tail block; interior blocks are
//! always full).  Each rank keeps a tiny fixed-size record — head block,
//! tail block, element count, entries used in the tail block — in a second
//! flat `Vec`.  Appending is `O(1)`; when a tail block fills, the next block
//! is carved off the end of the pool with a capacity that grows
//! geometrically (4 → 16 → 64, then capped), so per-rank slack is bounded
//! even for adversarial rank distributions while long frontiers approach
//! one contiguous run.
//!
//! Element indices are `u32`: a session would need to ingest more than
//! 4 billion elements before overflowing, and the sessions assert that
//! bound on ingest.

/// Sentinel for "no block".
const NONE: u32 = u32::MAX;
/// Capacity of the first block of every rank.
const FIRST_CAP: u32 = 4;
/// Blocks grow by this factor until [`MAX_CAP`].
const GROWTH: u32 = 4;
/// Largest block capacity; bounds worst-case slack per rank.
const MAX_CAP: u32 = 64;

/// Per-rank bookkeeping: the block chain endpoints and fill state.
#[derive(Debug, Clone, Copy)]
struct RankMeta {
    /// First block of the chain, or [`NONE`] while the rank is empty.
    head: u32,
    /// Last block of the chain (where appends go).
    tail: u32,
    /// Total entries in this rank, across all blocks.
    count: u32,
    /// Entries used in the tail block; interior blocks are always full.
    tail_used: u32,
}

impl RankMeta {
    const EMPTY: RankMeta = RankMeta { head: NONE, tail: NONE, count: 0, tail_used: 0 };
}

/// Per-rank index lists (the streaming *frontiers*) packed into one flat
/// pool of chained blocks.  See the module docs for the layout.
#[derive(Debug, Clone, Default)]
pub(crate) struct RankIndex {
    /// Block storage: `[next, cap, entries...]` records, back to back.
    pool: Vec<u32>,
    /// One record per rank seen so far.
    metas: Vec<RankMeta>,
}

impl RankIndex {
    /// A fresh, empty index.
    pub(crate) fn new() -> Self {
        RankIndex::default()
    }

    /// Number of distinct ranks seen so far (== the max rank pushed).
    pub(crate) fn ranks(&self) -> usize {
        self.metas.len()
    }

    /// Entries recorded for `rank` (0-based).
    pub(crate) fn count(&self, rank: usize) -> usize {
        self.metas.get(rank).map_or(0, |m| m.count as usize)
    }

    /// First (smallest) entry of `rank`, if any.
    pub(crate) fn first(&self, rank: usize) -> Option<u32> {
        let meta = self.metas.get(rank)?;
        if meta.head == NONE {
            return None;
        }
        Some(self.pool[meta.head as usize + 2])
    }

    /// Append `idx` to `rank`.  Entries within a rank must arrive in
    /// increasing order (the sessions push in arrival order, which is).
    pub(crate) fn push(&mut self, rank: usize, idx: u32) {
        if rank >= self.metas.len() {
            self.metas.resize(rank + 1, RankMeta::EMPTY);
        }
        let meta = self.metas[rank];
        if meta.head == NONE {
            let b = self.alloc_block(FIRST_CAP);
            let m = &mut self.metas[rank];
            m.head = b;
            m.tail = b;
            m.tail_used = 0;
        } else {
            let cap = self.pool[meta.tail as usize + 1];
            if meta.tail_used == cap {
                let b = self.alloc_block((cap * GROWTH).min(MAX_CAP));
                self.pool[meta.tail as usize] = b;
                let m = &mut self.metas[rank];
                m.tail = b;
                m.tail_used = 0;
            }
        }
        let m = &mut self.metas[rank];
        debug_assert!(
            m.tail_used == 0 || {
                let last = self.pool[m.tail as usize + 2 + m.tail_used as usize - 1];
                last < idx
            },
            "entries within a rank must be pushed in increasing order"
        );
        self.pool[m.tail as usize + 2 + m.tail_used as usize] = idx;
        m.tail_used += 1;
        m.count += 1;
    }

    /// Carve a fresh block of capacity `cap` off the end of the pool and
    /// return its offset.
    fn alloc_block(&mut self, cap: u32) -> u32 {
        let at = self.pool.len();
        assert!(at + 2 + cap as usize <= NONE as usize, "rank-index pool exceeds u32 addressing");
        self.pool.push(NONE);
        self.pool.push(cap);
        self.pool.resize(at + 2 + cap as usize, 0);
        at as u32
    }

    /// Iterate the entries of `rank` in increasing order.
    pub(crate) fn iter_rank(&self, rank: usize) -> RankEntries<'_> {
        let meta = self.metas.get(rank).copied().unwrap_or(RankMeta::EMPTY);
        RankEntries { index: self, block: meta.head, pos: 0, meta }
    }

    /// Largest entry of `rank` strictly below `limit`, if any — the
    /// Appendix-A "best decision" probe (binary search per block, and the
    /// chain walk stops at the first block that starts at or past `limit`).
    pub(crate) fn last_below(&self, rank: usize, limit: u32) -> Option<u32> {
        let meta = self.metas.get(rank).copied()?;
        let mut best = None;
        let mut block = meta.head;
        while block != NONE {
            let b = block as usize;
            let used = if block == meta.tail { meta.tail_used } else { self.pool[b + 1] } as usize;
            if used == 0 {
                break;
            }
            let entries = &self.pool[b + 2..b + 2 + used];
            if entries[0] >= limit {
                break;
            }
            let pos = entries.partition_point(|&e| e < limit);
            best = Some(entries[pos - 1]);
            if pos < used || block == meta.tail {
                break;
            }
            block = self.pool[b];
        }
        best
    }

    /// Pre-size for `additional_elems` more entries over up to
    /// `additional_ranks` new ranks, so steady-state appends never touch
    /// the allocator.  The element bound is conservative: it covers the
    /// worst case where every element opens a new rank (one block header
    /// plus a minimum block per element).
    pub(crate) fn reserve(&mut self, additional_elems: usize, additional_ranks: usize) {
        self.pool.reserve(additional_elems.saturating_mul(2 + FIRST_CAP as usize));
        self.metas.reserve(additional_ranks);
    }

    /// Heap bytes held (capacity, not length — this is what telemetry
    /// wants to see amortised away).
    pub(crate) fn approx_bytes(&self) -> usize {
        self.pool.capacity() * std::mem::size_of::<u32>()
            + self.metas.capacity() * std::mem::size_of::<RankMeta>()
    }
}

/// Iterator over one rank's entries; see [`RankIndex::iter_rank`].
pub(crate) struct RankEntries<'a> {
    index: &'a RankIndex,
    block: u32,
    pos: u32,
    meta: RankMeta,
}

impl Iterator for RankEntries<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.block == NONE {
                return None;
            }
            let b = self.block as usize;
            let used = if self.block == self.meta.tail {
                self.meta.tail_used
            } else {
                self.index.pool[b + 1]
            };
            if self.pos < used {
                let v = self.index.pool[b + 2 + self.pos as usize];
                self.pos += 1;
                return Some(v);
            }
            if self.block == self.meta.tail {
                self.block = NONE;
                return None;
            }
            self.block = self.index.pool[b];
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_count_and_iterate() {
        let mut ix = RankIndex::new();
        assert_eq!(ix.ranks(), 0);
        assert_eq!(ix.count(0), 0);
        assert!(ix.iter_rank(0).next().is_none());

        // Interleave pushes across ranks so blocks of different ranks
        // alternate inside the pool.
        for i in 0..200u32 {
            ix.push((i % 3) as usize, i);
        }
        assert_eq!(ix.ranks(), 3);
        for r in 0..3usize {
            let got: Vec<u32> = ix.iter_rank(r).collect();
            let want: Vec<u32> = (0..200).filter(|i| (i % 3) as usize == r).collect();
            assert_eq!(got, want, "rank {r}");
            assert_eq!(ix.count(r), want.len());
            assert_eq!(ix.first(r), Some(want[0]));
        }
    }

    #[test]
    fn last_below_matches_a_linear_scan() {
        let mut ix = RankIndex::new();
        let entries: Vec<u32> = (0..500).map(|i| i * 3 + 1).collect();
        for &e in &entries {
            ix.push(2, e);
        }
        for limit in [0u32, 1, 2, 4, 100, 750, 1_498, 1_499, 5_000] {
            let want = entries.iter().copied().rfind(|&e| e < limit);
            assert_eq!(ix.last_below(2, limit), want, "limit {limit}");
        }
        assert_eq!(ix.last_below(0, 1_000), None, "empty rank");
        assert_eq!(ix.last_below(9, 1_000), None, "unseen rank");
    }

    #[test]
    fn reserve_makes_steady_state_pushes_allocation_free() {
        // Behavioural proxy for "no reallocation": capacity is untouched
        // by pushes that fit the reservation.
        let mut ix = RankIndex::new();
        ix.reserve(1_000, 16);
        let pool_cap = ix.pool.capacity();
        let metas_cap = ix.metas.capacity();
        for i in 0..1_000u32 {
            ix.push((i % 16) as usize, i);
        }
        assert_eq!(ix.pool.capacity(), pool_cap);
        assert_eq!(ix.metas.capacity(), metas_cap);
    }

    #[test]
    fn single_element_ranks_chain_minimum_blocks() {
        let mut ix = RankIndex::new();
        for r in 0..100usize {
            ix.push(r, r as u32);
        }
        // One FIRST_CAP block per rank: header + cap slots each.
        assert_eq!(ix.pool.len(), 100 * (2 + FIRST_CAP as usize));
        for r in 0..100usize {
            assert_eq!(ix.iter_rank(r).collect::<Vec<_>>(), vec![r as u32]);
        }
    }
}
