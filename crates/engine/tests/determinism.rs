//! Engine determinism across thread counts: a multi-session tick schedule
//! executed under `num_threads(1)` and under the full pool must produce
//! identical per-op outcomes for every slot and identical final state
//! (ranks and patience tails) for every session.  Also asserts, via
//! `TickOutcome::worker_threads`, that the full-pool run really processes
//! shards on more than one worker thread — i.e. the tick path goes through
//! the join-splitting `par_iter` surface, not a sequential fallback.

use plis_engine::{Backend, Engine, EngineConfig, PathPolicy, SessionId, Tick, TickOutcome};
use plis_workloads::streaming::{round_robin_ticks, session_fleet};

/// Pool size for the parallel leg: `PLIS_BENCH_THREADS`, else the hardware
/// parallelism, floored at 2 so single-core machines still split.
fn parallel_threads() -> usize {
    std::env::var("PLIS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(2)
}

fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

/// The schedule as command-plane ticks, built once and replayed borrowed
/// on every leg (appends create their session on first contact).
fn command_ticks(fleet: &[(String, Vec<Vec<u64>>)]) -> Vec<Tick> {
    round_robin_ticks(fleet, |s| SessionId::from(s))
        .into_iter()
        .map(|tick| tick.into_iter().collect::<Tick>().auto_create())
        .collect()
}

struct RunOutcome {
    tick_outcomes: Vec<TickOutcome>,
    /// (session, ranks, tails) per session, sorted by session id.
    final_state: Vec<(String, Vec<u32>, Vec<u64>)>,
    max_worker_threads: usize,
}

fn run(threads: usize, ticks: &[Tick], config: &EngineConfig) -> RunOutcome {
    on_pool(threads, || {
        let mut engine = Engine::new(config.clone());
        let tick_outcomes: Vec<TickOutcome> =
            ticks.iter().map(|tick| engine.execute(tick)).collect();
        assert!(
            tick_outcomes.iter().all(TickOutcome::fully_applied),
            "a well-formed schedule must land every op"
        );
        engine.check_invariants();
        let final_state = engine
            .session_ids()
            .iter()
            .map(|id| {
                let session = engine.session(id.as_str()).expect("session exists");
                (id.as_str().to_string(), session.ranks().to_vec(), session.tails().to_vec())
            })
            .collect();
        let max_worker_threads = tick_outcomes.iter().map(|r| r.worker_threads).max().unwrap_or(1);
        RunOutcome { tick_outcomes, final_state, max_worker_threads }
    })
}

fn assert_identical(seq: &RunOutcome, par: &RunOutcome) {
    assert_eq!(seq.tick_outcomes.len(), par.tick_outcomes.len());
    for (t, (a, b)) in seq.tick_outcomes.iter().zip(par.tick_outcomes.iter()).enumerate() {
        // worker_threads is observational and intentionally excluded.
        assert_eq!(a.outcomes, b.outcomes, "tick {t}: per-op outcomes diverged");
        assert_eq!(a.total_ingested, b.total_ingested, "tick {t}");
        assert_eq!(a.sessions_touched, b.sessions_touched, "tick {t}");
    }
    assert_eq!(seq.final_state, par.final_state, "final ranks/tails diverged");
}

#[test]
fn multi_session_ticks_are_deterministic_across_thread_counts() {
    let (fleet, universe) = session_fleet(9, 4_000, 96, 0x00D1CE);
    let ticks = command_ticks(&fleet);
    assert!(ticks.len() > 10, "schedule should span many ticks");
    let config = EngineConfig {
        universe,
        backend: Backend::Auto,
        shards: 8,
        // Low threshold so the parallel merge ingest path runs too.
        path_policy: PathPolicy::Fixed(48),
        ..EngineConfig::default()
    };
    let seq = run(1, &ticks, &config);
    assert_eq!(seq.max_worker_threads, 1, "a 1-thread pool must not split");
    let par = run(parallel_threads().max(4), &ticks, &config);
    assert_identical(&seq, &par);
}

#[test]
fn full_pool_tick_processing_engages_multiple_workers() {
    let (fleet, universe) = session_fleet(12, 2_000, 128, 0xFEED);
    let ticks = command_ticks(&fleet);
    let config = EngineConfig {
        universe,
        backend: Backend::Auto,
        shards: 8,
        path_policy: PathPolicy::Fixed(64),
        ..EngineConfig::default()
    };
    let seq = run(1, &ticks, &config);
    // The helper-thread budget is process-global, so retry a few times
    // rather than flaking when concurrent tests hold all slots.
    let mut best = 1usize;
    for _attempt in 0..20 {
        let par = run(parallel_threads().max(4), &ticks, &config);
        assert_identical(&seq, &par);
        best = best.max(par.max_worker_threads);
        if best > 1 {
            break;
        }
    }
    assert!(best > 1, "expected >1 worker thread through the engine tick path (observed {best})");
}

#[test]
fn both_backends_are_deterministic() {
    for backend in [Backend::Veb, Backend::SortedVec] {
        let (fleet, universe) = session_fleet(6, 1_500, 64, 0xB0B);
        let ticks = command_ticks(&fleet);
        let config = EngineConfig {
            universe,
            backend,
            shards: 5,
            path_policy: PathPolicy::Fixed(32),
            ..EngineConfig::default()
        };
        let seq = run(1, &ticks, &config);
        let par = run(parallel_threads(), &ticks, &config);
        assert_identical(&seq, &par);
    }
}
