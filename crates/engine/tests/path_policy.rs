//! Engine-level contract for cost-based ingest path selection: the path
//! policy steers *which* ingest path runs, never *what* it computes.  A
//! schedule executed under `PathPolicy::Cost` must leave every session —
//! unweighted and weighted — in exactly the state any forced threshold
//! produces, and the cost decisions themselves must be deterministic
//! within a process (calibration runs once; after that the choice is a
//! pure function of batch and summary size).

use plis_engine::{Backend, Engine, EngineConfig, IngestPath, Op, PathPolicy, SessionId, Tick};
use plis_lis::DominantMaxKind;
use plis_workloads::streaming::{round_robin_ticks, session_fleet, weighted_session_fleet};

/// A mixed schedule: the unweighted fleet's ticks followed by the
/// weighted fleet's, all auto-creating (weighted batches imply weighted
/// sessions), plus the covering universe.
fn mixed_schedule() -> (Vec<Tick>, u64) {
    let (plain, u1) = session_fleet(5, 1_200, 80, 0xC0575);
    let (weighted, u2) = weighted_session_fleet(4, 900, 70, 20, 0xC0575);
    let mut ticks: Vec<Tick> = round_robin_ticks(&plain, |s| SessionId::from(s))
        .into_iter()
        .map(|t| t.into_iter().collect::<Tick>().auto_create())
        .collect();
    ticks.extend(round_robin_ticks(&weighted, |s| SessionId::from(s)).into_iter().map(|t| {
        t.into_iter()
            .map(|(id, batch)| (id, Op::AppendWeighted(batch)))
            .collect::<Tick>()
            .auto_create()
    }));
    (ticks, u1.max(u2))
}

/// One session's observable state: id, ranks, tails-or-frontier, scores.
type SessionFingerprint = (String, Vec<u32>, Vec<u64>, Vec<u64>);

/// Every session's full observable state, sorted by id.
fn final_state(engine: &Engine) -> Vec<SessionFingerprint> {
    engine
        .session_ids()
        .iter()
        .map(|id| {
            if let Some(s) = engine.session(id.as_str()) {
                (id.as_str().to_string(), s.ranks().to_vec(), s.tails().to_vec(), Vec::new())
            } else {
                let s = engine.weighted_session(id.as_str()).expect("session is one of the kinds");
                let frontier: Vec<u64> = s.frontier().iter().flat_map(|&(v, sc)| [v, sc]).collect();
                (id.as_str().to_string(), Vec::new(), frontier, s.scores().to_vec())
            }
        })
        .collect()
}

/// The per-op ingest paths of one executed schedule, for replay checks.
fn paths_taken(outcomes: &[plis_engine::TickOutcome]) -> Vec<IngestPath> {
    outcomes
        .iter()
        .flat_map(|o| o.outcomes.iter())
        .filter_map(|(_, r)| match r {
            Ok(plis_engine::OpOutput::Appended(report)) => Some(match report {
                plis_engine::BatchReport::Unweighted(r) => r.path,
                plis_engine::BatchReport::Weighted(r) => r.path,
            }),
            _ => None,
        })
        .collect()
}

fn run(config: &EngineConfig, ticks: &[Tick]) -> (Engine, Vec<plis_engine::TickOutcome>) {
    let mut engine = Engine::new(config.clone());
    let outcomes: Vec<_> = ticks.iter().map(|t| engine.execute(t)).collect();
    assert!(outcomes.iter().all(|o| o.fully_applied()));
    engine.check_invariants();
    (engine, outcomes)
}

#[test]
fn cost_policy_matches_every_forced_threshold() {
    let (ticks, universe) = mixed_schedule();
    let base = EngineConfig {
        universe,
        backend: Backend::Auto,
        dommax: DominantMaxKind::Auto,
        shards: 4,
        path_policy: PathPolicy::Cost,
        ..EngineConfig::default()
    };
    let (cost_engine, _) = run(&base, &ticks);
    let want = final_state(&cost_engine);
    for threshold in [1usize, 33, 80, 512, usize::MAX] {
        let config = EngineConfig { path_policy: PathPolicy::Fixed(threshold), ..base.clone() };
        let (forced, _) = run(&config, &ticks);
        assert_eq!(
            final_state(&forced),
            want,
            "threshold {threshold} diverged from the cost policy"
        );
    }
}

#[test]
fn cost_decisions_are_deterministic_within_a_process() {
    let (ticks, universe) = mixed_schedule();
    let config = EngineConfig {
        universe,
        backend: Backend::Auto,
        dommax: DominantMaxKind::Auto,
        shards: 3,
        path_policy: PathPolicy::Cost,
        ..EngineConfig::default()
    };
    let (_, first) = run(&config, &ticks);
    let (_, second) = run(&config, &ticks);
    // Calibration is one-shot per process: replaying the schedule must
    // route every append exactly the same way, not just compute the same
    // state.
    assert_eq!(paths_taken(&first), paths_taken(&second));
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.outcomes, b.outcomes);
    }
}
