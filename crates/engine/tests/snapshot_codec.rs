//! Property layer over the persistence codec: `decode(encode(s)) == s`
//! for arbitrary session states, engine snapshots and ticks; truncated,
//! corrupted and wrong-version streams yield typed [`SnapshotError`]s —
//! never a panic, never a partial restore.  Includes the clean-vs-dirty
//! differential: an engine fed invalid restore ops in between valid
//! traffic ends in exactly the state of an engine that never saw them.

use plis_engine::{
    decode_read_outcome, decode_read_tick, decode_tick, decode_tick_outcome, encode_read_outcome,
    encode_read_tick, encode_tick, encode_tick_outcome, Engine, EngineConfig, EngineSnapshot,
    Query, ReadTick, SessionKind, SessionSnapshot, SnapshotError, Tick,
};
use proptest::prelude::*;

const UNIVERSE: u64 = 1 << 14;

fn config() -> EngineConfig {
    EngineConfig { universe: UNIVERSE, shards: 3, ..EngineConfig::default() }
}

/// Capture an unweighted session snapshot by actually ingesting the
/// stream — the only way honest snapshots come to exist.
fn unweighted_snapshot(values: &[u64]) -> SessionSnapshot {
    let mut engine = Engine::new(config());
    engine.create_session_kind("s", SessionKind::Unweighted);
    engine.execute(&Tick::new().append("s", values.to_vec()));
    engine.snapshot_session("s").unwrap()
}

fn weighted_snapshot(pairs: &[(u64, u64)]) -> SessionSnapshot {
    let mut engine = Engine::new(config());
    engine.create_session_kind("w", SessionKind::Weighted);
    engine.execute(&Tick::new().append_weighted("w", pairs.to_vec()));
    engine.snapshot_session("w").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unweighted_session_round_trips(
        values in proptest::collection::vec(0u64..UNIVERSE, 0..200),
    ) {
        let snapshot = unweighted_snapshot(&values);
        prop_assert_eq!(SessionSnapshot::decode(&snapshot.encode()), Ok(snapshot));
    }

    #[test]
    fn weighted_session_round_trips(
        pairs in proptest::collection::vec((0u64..UNIVERSE, 1u64..100), 0..160),
    ) {
        let snapshot = weighted_snapshot(&pairs);
        prop_assert_eq!(SessionSnapshot::decode(&snapshot.encode()), Ok(snapshot));
    }

    #[test]
    fn engine_snapshot_round_trips(
        a in proptest::collection::vec(0u64..UNIVERSE, 0..80),
        b in proptest::collection::vec((0u64..UNIVERSE, 1u64..50), 0..80),
    ) {
        let mut engine = Engine::new(config());
        engine.execute(
            &Tick::new()
                .create("plain", SessionKind::Unweighted)
                .append("plain", a)
                .create("heavy", SessionKind::Weighted)
                .append_weighted("heavy", b),
        );
        let snapshot = engine.snapshot();
        prop_assert_eq!(EngineSnapshot::decode(&snapshot.encode()), Ok(snapshot));
    }

    #[test]
    fn tick_codec_round_trips(
        batch in proptest::collection::vec(0u64..UNIVERSE, 0..60),
        pairs in proptest::collection::vec((0u64..UNIVERSE, 1u64..40), 0..40),
        probe in 0u64..UNIVERSE,
        auto in any::<bool>(),
    ) {
        let mut tick = Tick::new()
            .create("u", SessionKind::Unweighted)
            .append("u", batch)
            .append_weighted("w", pairs.clone())
            .query("u", vec![
                Query::RankOf(probe as usize),
                Query::CountAt(probe),
                Query::TopK(3),
                Query::Certificate,
            ])
            .snapshot("u")
            .restore("w2", weighted_snapshot(&pairs))
            .remove("u");
        if auto {
            tick = tick.auto_create();
        }
        prop_assert_eq!(decode_tick(&encode_tick(&tick)), Ok(tick));
    }

    /// Outcome frames — the service plane's response payloads — round
    /// trip honestly-produced outcomes, including per-op errors and a
    /// nested session snapshot, and survive hostile bytes the same way
    /// the request frames do: truncation at every length and every
    /// single-byte XOR mutation is a typed error, never a panic.
    #[test]
    fn outcome_frames_round_trip_and_reject_mutations(
        batch in proptest::collection::vec(0u64..UNIVERSE, 1..48),
        pairs in proptest::collection::vec((0u64..UNIVERSE, 1u64..40), 1..32),
        probe in 0u64..UNIVERSE,
        flip in 1u8..255,
    ) {
        let mut engine = Engine::new(config());
        // A tick whose outcome exercises every output arm: ingest
        // reports for both kinds, query answers, a snapshot riding back
        // in the outcome, and typed errors (kind mismatch, unknown id).
        let tick = Tick::new()
            .create("u", SessionKind::Unweighted)
            .append("u", batch)
            .create("w", SessionKind::Weighted)
            .append_weighted("w", pairs)
            .query("u", vec![
                Query::RankOf(probe as usize),
                Query::CountAt(probe),
                Query::TopK(3),
                Query::Certificate,
            ])
            .snapshot("w")
            .append_weighted("u", vec![(1, 1)])
            .append("ghost", vec![2]);
        let outcome = engine.execute(&tick);
        prop_assert!(!outcome.fully_applied(), "the poison ops must fail");
        let bytes = encode_tick_outcome(&outcome);
        prop_assert_eq!(decode_tick_outcome(&bytes).as_ref(), Ok(&outcome));

        let read = ReadTick::new()
            .query("u", vec![Query::RankOf(0), Query::TopK(2)])
            .query("w", Query::Certificate)
            .query("missing", Query::CountAt(probe));
        prop_assert_eq!(
            decode_read_tick(&encode_read_tick(&read)).as_ref(), Ok(&read)
        );
        let read_outcome = engine.execute_read(&read);
        let read_bytes = encode_read_outcome(&read_outcome);
        prop_assert_eq!(decode_read_outcome(&read_bytes).as_ref(), Ok(&read_outcome));

        for bytes in [&bytes, &read_bytes] {
            for len in 0..bytes.len() {
                prop_assert!(
                    decode_tick_outcome(&bytes[..len]).is_err(),
                    "outcome prefix of length {} decoded", len
                );
                prop_assert!(
                    decode_read_outcome(&bytes[..len]).is_err(),
                    "read-outcome prefix of length {} decoded", len
                );
            }
        }
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= flip;
            prop_assert!(
                decode_tick_outcome(&mutated).is_err(),
                "mutating outcome byte {} (xor {:#04x}) decoded", i, flip
            );
        }
        for i in 0..read_bytes.len() {
            let mut mutated = read_bytes.clone();
            mutated[i] ^= flip;
            prop_assert!(
                decode_read_outcome(&mutated).is_err(),
                "mutating read-outcome byte {} (xor {:#04x}) decoded", i, flip
            );
        }
        // The two outcome kinds never cross-decode.
        prop_assert!(decode_read_outcome(&bytes).is_err());
        prop_assert!(decode_tick_outcome(&read_bytes).is_err());
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error(
        values in proptest::collection::vec(0u64..UNIVERSE, 1..40),
    ) {
        let bytes = unweighted_snapshot(&values).encode();
        for len in 0..bytes.len() {
            prop_assert!(
                SessionSnapshot::decode(&bytes[..len]).is_err(),
                "prefix of length {} decoded", len
            );
        }
    }

    #[test]
    fn every_single_byte_mutation_is_a_typed_error(
        values in proptest::collection::vec(0u64..UNIVERSE, 1..32),
        flip in 1u8..255,
    ) {
        let bytes = unweighted_snapshot(&values).encode();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= flip;
            // Decode must return Err — reaching this assert at all means
            // it did not panic.
            prop_assert!(
                SessionSnapshot::decode(&mutated).is_err(),
                "mutating byte {} (xor {:#04x}) decoded", i, flip
            );
        }
    }
}

#[test]
fn header_damage_maps_to_the_right_variants() {
    let bytes = unweighted_snapshot(&[5, 1, 9, 2]).encode();
    assert_eq!(SessionSnapshot::decode(&[]), Err(SnapshotError::Truncated));
    assert_eq!(SessionSnapshot::decode(&bytes[..10]), Err(SnapshotError::Truncated));
    let mut bad = bytes.clone();
    bad[3] = b'X';
    assert_eq!(SessionSnapshot::decode(&bad), Err(SnapshotError::BadMagic));
    let mut future = bytes.clone();
    future[8] = 200;
    assert_eq!(SessionSnapshot::decode(&future), Err(SnapshotError::UnsupportedVersion(200)));
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 1;
    assert_eq!(SessionSnapshot::decode(&flipped), Err(SnapshotError::ChecksumMismatch));
    // Trailing bytes after a payload whose checksum was recomputed to
    // match: exercise the dedicated variant through the tick codec, whose
    // sealed payload we can rebuild.
    let engine_bytes = {
        let mut engine = Engine::new(config());
        engine.create_session("s");
        engine.snapshot().encode()
    };
    assert_eq!(
        EngineSnapshot::decode(&bytes),
        Err(SnapshotError::Malformed("sealed payload is of a different kind"))
    );
    assert!(SessionSnapshot::decode(&engine_bytes).is_err());
}

/// Forged snapshots — structurally well-formed but semantically wrong —
/// are rejected by validation, through decode and through restore alike.
#[test]
fn inconsistent_snapshots_are_rejected() {
    let snapshot = unweighted_snapshot(&[10, 4, 12, 3, 20]);
    let SessionSnapshot::Unweighted { universe, values, ranks, tails } = snapshot else {
        panic!("unweighted expected");
    };

    // Wrong rank.
    let mut bad_ranks = ranks.clone();
    bad_ranks[1] = 9;
    let forged = SessionSnapshot::Unweighted {
        universe,
        values: values.clone(),
        ranks: bad_ranks,
        tails: tails.clone(),
    };
    assert!(matches!(forged.validate(), Err(SnapshotError::Malformed(_))));
    assert!(SessionSnapshot::decode(&forged.encode()).is_err());

    // Wrong tails.
    let mut bad_tails = tails.clone();
    bad_tails[0] += 1;
    let forged = SessionSnapshot::Unweighted {
        universe,
        values: values.clone(),
        ranks: ranks.clone(),
        tails: bad_tails,
    };
    assert!(SessionSnapshot::decode(&forged.encode()).is_err());

    // Value outside the universe.
    let mut bad_values = values.clone();
    bad_values[0] = UNIVERSE;
    let forged = SessionSnapshot::Unweighted { universe, values: bad_values, ranks, tails };
    assert!(SessionSnapshot::decode(&forged.encode()).is_err());

    // Weighted: forged score.
    let snapshot = weighted_snapshot(&[(3, 5), (7, 2), (1, 9)]);
    let SessionSnapshot::Weighted { universe, values, weights, mut scores, frontier } = snapshot
    else {
        panic!("weighted expected");
    };
    scores[2] += 1;
    let forged = SessionSnapshot::Weighted { universe, values, weights, scores, frontier };
    assert!(SessionSnapshot::decode(&forged.encode()).is_err());
}

/// Clean-vs-dirty differential: interleaving invalid restore ops (forged
/// snapshots, occupied ids) with valid traffic leaves the dirty engine in
/// exactly the clean engine's state — rejected ops have no side effects.
#[test]
fn invalid_restores_leave_no_trace() {
    let mut state = 0x5EEDu64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let forged = {
        let snapshot = unweighted_snapshot(&[8, 3, 9]);
        let SessionSnapshot::Unweighted { universe, values, mut ranks, tails } = snapshot else {
            panic!("unweighted expected");
        };
        ranks[0] = 2;
        SessionSnapshot::Unweighted { universe, values, ranks, tails }
    };
    let valid = unweighted_snapshot(&[8, 3, 9]);

    let mut clean = Engine::new(config());
    let mut dirty = Engine::new(config());
    for round in 0..8 {
        let batch: Vec<u64> = (0..40).map(|_| rand() % UNIVERSE).collect();
        let good = Tick::new().append(format!("s{}", round % 3), batch.clone()).auto_create();
        let outcome = clean.execute(&good);
        // The dirty engine sees the same traffic plus poison ops that
        // must all fail typed: a forged snapshot, and a restore onto an
        // id occupied earlier in the same tick.
        let poisoned = Tick::new()
            .append(format!("s{}", round % 3), batch)
            .restore("poison", forged.clone())
            .restore(format!("s{}", round % 3), valid.clone())
            .auto_create();
        let dirty_outcome = dirty.execute(&poisoned);
        assert_eq!(outcome.outcomes[0].1, dirty_outcome.outcomes[0].1, "round {round}");
        assert!(dirty_outcome.outcomes[1].1.is_err(), "forged restore must fail");
        assert!(dirty_outcome.outcomes[2].1.is_err(), "occupied-id restore must fail");
    }
    assert!(!dirty.remove_session("poison"), "poison session must not exist");
    assert_eq!(clean.snapshot(), dirty.snapshot(), "dirty engine diverged from clean");
    clean.check_invariants();
    dirty.check_invariants();
}

/// A tick containing an op the decoder does not know is a forward-compat
/// story for later versions; today, an unknown op tag is a typed error.
#[test]
fn unknown_tick_bytes_fail_typed() {
    let tick = Tick::new().append("s", vec![1, 2, 3]).auto_create();
    let bytes = encode_tick(&tick);
    for len in 0..bytes.len() {
        assert!(decode_tick(&bytes[..len]).is_err(), "tick prefix {len} decoded");
    }
    // A session snapshot is not a tick.
    let session = unweighted_snapshot(&[1, 2]);
    assert!(decode_tick(&session.encode()).is_err());
}
