//! The acceptance property of the **error surface**: every malformed op
//! in a well-formed [`Tick`] / [`ReadTick`] — unknown sessions, weighted
//! batches aimed at unweighted sessions, double creation, out-of-universe
//! values — resolves to a typed `Err(OpError)` without panicking, without
//! touching any session, and without disturbing its tick neighbours; and
//! the full per-op outcome stream is bit-identical at 1 thread and at the
//! full pool.

use plis_engine::{
    Engine, EngineConfig, Op, OpError, OpOutput, PathPolicy, Query, ReadOutcome, ReadTick,
    SessionKind, Tick, TickOutcome,
};
use plis_workloads::streaming::{round_robin_ticks, session_fleet};

/// Pool size for the parallel leg: `PLIS_BENCH_THREADS`, else the hardware
/// parallelism, floored at 2 so single-core machines still split.
fn parallel_threads() -> usize {
    std::env::var("PLIS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(2)
}

fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

fn config(universe: u64) -> EngineConfig {
    EngineConfig {
        universe,
        shards: 4,
        path_policy: PathPolicy::Fixed(32),
        ..EngineConfig::default()
    }
}

/// A schedule that hits every error variant while healthy traffic flows
/// around it: valid fleet ticks with malformed slots woven in.
fn adversarial_ticks() -> (Vec<Tick>, u64) {
    let (fleet, universe) = session_fleet(5, 800, 64, 0xBAD);
    let mut ticks: Vec<Tick> = Vec::new();
    // Tick 0: explicit creations for the fleet, plus a weighted decoy —
    // and a create-twice collision inside the same tick.
    let mut setup = Tick::new();
    for (name, _) in &fleet {
        setup.push(name.as_str(), Op::CreateSession { kind: SessionKind::Unweighted });
    }
    setup.push("decoy-w", Op::CreateSession { kind: SessionKind::Weighted });
    setup.push("decoy-w", Op::CreateSession { kind: SessionKind::Unweighted }); // SessionExists
    ticks.push(setup);

    for (round, tick) in round_robin_ticks(&fleet, |s| String::from(s)).into_iter().enumerate() {
        let mut command: Tick = tick.into_iter().collect();
        match round % 4 {
            // A weighted batch aimed at an unweighted fleet session.
            0 => command.push("range-0", Op::AppendWeighted(vec![(1, 1)])),
            // Appends and queries against sessions that do not exist
            // (strict ticks: no auto-create).
            1 => {
                command.push("ghost", Op::Append(vec![1, 2, 3]));
                command.push("ghost", Op::Query(Query::Certificate.into()));
                command.push("ghost", Op::RemoveSession);
            }
            // Values outside the universe, plain and weighted.
            2 => {
                command.push("line-1", Op::Append(vec![0, universe]));
                command.push("decoy-w", Op::AppendWeighted(vec![(universe + 7, 1)]));
            }
            // Re-creating live sessions.
            _ => command.push("permutation-2", Op::CreateSession { kind: SessionKind::Weighted }),
        }
        ticks.push(command);
    }
    (ticks, universe)
}

struct RunOutcome {
    tick_outcomes: Vec<TickOutcome>,
    read_outcome: ReadOutcome,
    final_state: Vec<(String, Vec<u32>)>,
}

fn run(ticks: &[Tick], universe: u64, threads: usize) -> RunOutcome {
    on_pool(threads, || {
        let mut engine = Engine::new(config(universe));
        let tick_outcomes: Vec<TickOutcome> =
            ticks.iter().map(|tick| engine.execute(tick)).collect();
        engine.check_invariants();
        // A read tick mixing live and absent sessions exercises the
        // read-plane error surface on the same engine.
        let read = ReadTick::new()
            .query("range-0", vec![Query::RankOf(0), Query::TopK(3)])
            .query("ghost", Query::Certificate)
            .query("decoy-w", Query::CountAt(1))
            .query("nope", Query::RankOf(9));
        let read_outcome = engine.execute_read(&read);
        let final_state = engine
            .session_ids()
            .iter()
            .filter_map(|id| {
                engine.session(id.as_str()).map(|s| (id.as_str().to_string(), s.ranks().to_vec()))
            })
            .collect();
        RunOutcome { tick_outcomes, read_outcome, final_state }
    })
}

#[test]
fn adversarial_schedule_is_typed_deterministic_and_panic_free() {
    let (ticks, universe) = adversarial_ticks();
    let seq = run(&ticks, universe, 1);
    let par = run(&ticks, universe, parallel_threads());

    // Bit-identical per-op outcomes (including every error) across pools.
    assert_eq!(seq.tick_outcomes.len(), par.tick_outcomes.len());
    for (t, (a, b)) in seq.tick_outcomes.iter().zip(&par.tick_outcomes).enumerate() {
        assert_eq!(a.outcomes, b.outcomes, "tick {t}: outcomes diverged across pools");
        assert_eq!(a.failed_ops, b.failed_ops, "tick {t}");
    }
    assert_eq!(seq.read_outcome.outcomes, par.read_outcome.outcomes, "read outcomes diverged");
    assert_eq!(seq.final_state, par.final_state, "final session state diverged");

    // The woven-in malformed slots all failed with their exact variant...
    let errors: Vec<OpError> = seq
        .tick_outcomes
        .iter()
        .flat_map(|o| o.errors().map(|(_, e)| *e).collect::<Vec<_>>())
        .collect();
    assert!(errors.contains(&OpError::SessionExists { kind: SessionKind::Weighted }));
    assert!(errors.contains(&OpError::SessionExists { kind: SessionKind::Unweighted }));
    assert!(errors.contains(&OpError::KindMismatch {
        session: SessionKind::Unweighted,
        batch: SessionKind::Weighted,
    }));
    assert!(errors.contains(&OpError::UnknownSession));
    assert!(errors.contains(&OpError::UniverseOverflow { value: universe, universe }));
    assert!(errors.contains(&OpError::UniverseOverflow { value: universe + 7, universe }));

    // ...and every healthy fleet slot landed: per tick, exactly the
    // malformed slots failed.
    for outcome in &seq.tick_outcomes {
        for (id, result) in &outcome.outcomes {
            if let Err(e) = result {
                let expected = matches!(
                    (id.as_str(), e),
                    ("decoy-w", OpError::SessionExists { .. } | OpError::UniverseOverflow { .. })
                        | ("ghost", OpError::UnknownSession)
                        | ("range-0", OpError::KindMismatch { .. })
                        | ("line-1", OpError::UniverseOverflow { .. })
                        | ("permutation-2", OpError::SessionExists { .. })
                );
                assert!(expected, "unexpected failure on {id}: {e:?}");
            }
        }
    }
}

#[test]
fn rejected_ops_leave_sessions_and_oracle_state_untouched() {
    let (fleet, universe) = session_fleet(4, 600, 48, 0x7E57);
    // Clean run: the fleet with no malformed slots.
    let mut clean = Engine::new(config(universe));
    // Dirty run: the same fleet with every error variant woven in.
    let mut dirty = Engine::new(config(universe));
    for (name, _) in &fleet {
        clean.create_session(name.as_str());
        dirty.create_session(name.as_str());
    }
    for tick in round_robin_ticks(&fleet, |s| String::from(s)) {
        let clean_tick: Tick = tick.iter().cloned().collect();
        let mut dirty_tick: Tick = tick.into_iter().collect();
        dirty_tick.push("range-0", Op::AppendWeighted(vec![(5, 5)]));
        dirty_tick.push("range-0", Op::Append(vec![universe + 1]));
        dirty_tick.push("absent", Op::Append(vec![1]));
        dirty_tick.push("line-1", Op::CreateSession { kind: SessionKind::Unweighted });
        assert!(clean.execute(&clean_tick).fully_applied());
        let outcome = dirty.execute(&dirty_tick);
        assert_eq!(outcome.failed_ops, 4, "exactly the malformed slots fail");
    }
    // The rejected ops were invisible to the surviving state.
    assert_eq!(clean.session_count(), dirty.session_count());
    for id in clean.session_ids() {
        let a = clean.session(id.as_str()).expect("clean session");
        let b = dirty.session(id.as_str()).expect("dirty session");
        assert_eq!(a.ranks(), b.ranks(), "session {id}");
        assert_eq!(a.tails(), b.tails(), "session {id}");
    }
    clean.check_invariants();
    dirty.check_invariants();
}

#[test]
fn execute_and_execute_read_agree_on_the_error_surface() {
    let mut engine = Engine::new(config(1 << 10));
    engine.execute(
        &Tick::new()
            .create("plain", SessionKind::Unweighted)
            .create("heavy", SessionKind::Weighted)
            .append("plain", vec![3, 1, 4])
            .append_weighted("heavy", vec![(2, 9), (7, 4)]),
    );

    let queries = [
        ("plain", Query::RankOf(2)),
        ("missing", Query::RankOf(0)),
        ("heavy", Query::TopK(1)),
        ("also-missing", Query::Certificate),
    ];
    let read: ReadTick =
        queries.iter().map(|&(id, q)| (id, q)).collect::<Vec<_>>().into_iter().collect();
    let write: Tick = queries.iter().map(|&(id, q)| (id, Op::from(q))).collect();

    let via_read = engine.execute_read(&read);
    let via_write = engine.execute(&write);
    assert_eq!(via_read.sessions_missing, 2);
    assert_eq!(via_write.failed_ops, 2);
    for ((id_r, r), (id_w, w)) in via_read.outcomes.iter().zip(&via_write.outcomes) {
        assert_eq!(id_r, id_w);
        match (r, w) {
            (Ok(read_report), Ok(OpOutput::Answered(write_report))) => {
                assert_eq!(read_report, write_report, "answers diverged for {id_r}")
            }
            (Err(re), Err(we)) => assert_eq!(re, we, "errors diverged for {id_r}"),
            other => panic!("planes disagree for {id_r}: {other:?}"),
        }
    }
    // Neither plane created the missing sessions.
    assert_eq!(engine.session_count(), 2);
}
