//! The persistence plane's differential gate: snapshot an engine at tick
//! `t`, restore into a fresh engine (through the encoded byte form, so the
//! codec is on the proven path), replay the journal suffix, and require
//! everything observable — per-op outcomes, `session_ids()`, query
//! answers, certificates — to be bit-identical to an engine that never
//! stopped.  Runs across both session kinds, every tail-set backend, both
//! dominant-max stores, and at one thread and the full pool.
//!
//! Also proves the crash-recovery story: a scripted
//! journal-append/snapshot-write schedule is killed at *every* boundary
//! (including torn mid-record journal tails), and recovery from whatever
//! artifacts survive reaches exactly the state of the uninterrupted run
//! over the complete journal records.

use plis_engine::{
    replay_journal_from, Backend, DominantMaxKind, Engine, EngineConfig, EngineSnapshot, OpError,
    PathPolicy, Query, SessionKind, SessionSnapshot, Tick, TickJournal,
};

/// Pool size for the parallel leg: `PLIS_BENCH_THREADS`, else the hardware
/// parallelism, floored at 2 so single-core machines still split.
fn parallel_threads() -> usize {
    std::env::var("PLIS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(2)
}

fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const UNIVERSE: u64 = 1 << 20;

/// A mixed multi-session schedule: plain and weighted appends (batch sizes
/// straddling the forced parallel threshold), interleaved queries
/// (certificates included), and a mid-schedule remove/recreate so session
/// lifecycle rides the journal too.
fn schedule(ticks: usize, seed: u64) -> Vec<Tick> {
    let mut state = seed;
    let mut out = Vec::with_capacity(ticks + 1);
    out.push(
        Tick::new()
            .create("alpha", SessionKind::Unweighted)
            .create("bravo", SessionKind::Unweighted)
            .create("orders", SessionKind::Weighted)
            .create("bids", SessionKind::Weighted),
    );
    for round in 0..ticks {
        let mut tick = Tick::new();
        for id in ["alpha", "bravo"] {
            let len = (xorshift(&mut state) % 96) as usize + 8;
            let batch: Vec<u64> = (0..len).map(|_| xorshift(&mut state) % UNIVERSE).collect();
            tick.push(id, plis_engine::Op::Append(batch));
        }
        for id in ["orders", "bids"] {
            let len = (xorshift(&mut state) % 80) as usize + 8;
            let batch: Vec<(u64, u64)> = (0..len)
                .map(|_| (xorshift(&mut state) % UNIVERSE, xorshift(&mut state) % 50 + 1))
                .collect();
            tick.push(id, plis_engine::Op::AppendWeighted(batch));
        }
        let probe = xorshift(&mut state) % UNIVERSE;
        let mut tick = tick
            .query("alpha", vec![Query::CountAt(probe), Query::TopK(3), Query::Certificate])
            .query("orders", vec![Query::CountAt(probe), Query::Certificate]);
        if round == ticks / 2 {
            tick = tick.remove("bravo").create("bravo", SessionKind::Weighted);
        }
        out.push(tick);
    }
    out
}

fn config(backend: Backend, dommax: DominantMaxKind) -> EngineConfig {
    EngineConfig {
        universe: UNIVERSE,
        backend,
        dommax,
        shards: 4,
        // Low fixed threshold so the parallel merge path runs for most
        // batches of the schedule.
        path_policy: PathPolicy::Fixed(32),
        ..EngineConfig::default()
    }
}

/// Assert two engines are observationally identical: same sorted ids,
/// same complete per-session state (streams, ranks, tails, scores,
/// frontiers — via the full state snapshot), and the same answers
/// (certificates included) to a common query tick.
fn assert_engines_identical(never_stopped: &mut Engine, recovered: &mut Engine, label: &str) {
    assert_eq!(
        never_stopped.session_ids(),
        recovered.session_ids(),
        "{label}: session ids diverged"
    );
    assert_eq!(never_stopped.snapshot(), recovered.snapshot(), "{label}: captured state diverged");
    let mut probe = Tick::new();
    for id in never_stopped.session_ids() {
        probe.push(
            id,
            plis_engine::Op::Query(
                vec![Query::RankOf(0), Query::CountAt(777), Query::TopK(4), Query::Certificate]
                    .into(),
            ),
        );
    }
    let a = never_stopped.execute(&probe);
    let b = recovered.execute(&probe);
    assert_eq!(a, b, "{label}: query answers diverged");
    never_stopped.check_invariants();
    recovered.check_invariants();
}

/// The tentpole differential: journal every tick, snapshot mid-stream,
/// restore through the encoded bytes, replay the suffix, compare against
/// the engine that never stopped — per config axis and thread count.
fn snapshot_restore_replay_differential(threads: usize, backend: Backend, dommax: DominantMaxKind) {
    on_pool(threads, || {
        let label = format!("{backend:?}/{dommax:?}/{threads}t");
        let ticks = schedule(14, 0xC0FFEE ^ threads as u64);
        let cut = ticks.len() / 2 + 1;

        // The engine that never stops, with per-tick outcomes kept.
        let mut live = Engine::new(config(backend, dommax));
        let mut journal = TickJournal::new(Vec::new());
        let mut live_outcomes = Vec::new();
        let mut checkpoint = None;
        for (t, tick) in ticks.iter().enumerate() {
            journal.record(tick).unwrap();
            live_outcomes.push(live.execute(tick));
            if t + 1 == cut {
                checkpoint = Some((live.snapshot().encode(), journal.records() as usize));
            }
        }
        let (snapshot_bytes, covered) = checkpoint.expect("cut inside the schedule");
        let journal_bytes = journal.into_inner();

        // Recover: decode the snapshot, restore a fresh engine, replay the
        // journal suffix.
        let snapshot = EngineSnapshot::decode(&snapshot_bytes).unwrap_or_else(|e| {
            panic!("{label}: snapshot failed to decode: {e}");
        });
        let mut recovered = Engine::restore(config(backend, dommax), &snapshot)
            .unwrap_or_else(|e| panic!("{label}: restore failed: {e:?}"));
        let report = replay_journal_from(&mut recovered, &journal_bytes, covered)
            .unwrap_or_else(|e| panic!("{label}: replay failed: {e}"));
        assert_eq!(report.skipped, covered, "{label}");
        assert_eq!(report.truncated_bytes, 0, "{label}: clean journal");
        assert_eq!(
            report.outcomes[..],
            live_outcomes[cut..],
            "{label}: replayed outcomes diverged from the never-stopped run"
        );
        assert_engines_identical(&mut live, &mut recovered, &label);
    });
}

#[test]
fn differential_across_backends_single_thread() {
    for backend in [Backend::Veb, Backend::SortedVec, Backend::Auto] {
        snapshot_restore_replay_differential(1, backend, DominantMaxKind::RangeTree);
    }
}

#[test]
fn differential_across_backends_full_pool() {
    for backend in [Backend::Veb, Backend::SortedVec, Backend::Auto] {
        snapshot_restore_replay_differential(
            parallel_threads(),
            backend,
            DominantMaxKind::RangeTree,
        );
    }
}

#[test]
fn differential_across_dommax_stores() {
    for dommax in [DominantMaxKind::RangeTree, DominantMaxKind::RangeVeb] {
        snapshot_restore_replay_differential(1, Backend::Auto, dommax);
        snapshot_restore_replay_differential(parallel_threads(), Backend::Auto, dommax);
    }
}

/// A snapshot taken under one configuration restores under a different
/// backend / shard count / path policy with identical observable state —
/// configuration is not state.
#[test]
fn restore_is_config_portable() {
    let ticks = schedule(10, 0xBEEF);
    let mut source = Engine::new(config(Backend::Veb, DominantMaxKind::RangeTree));
    for tick in &ticks {
        source.execute(tick);
    }
    let bytes = source.snapshot().encode();
    let snapshot = EngineSnapshot::decode(&bytes).unwrap();
    let target_config = EngineConfig {
        universe: UNIVERSE,
        backend: Backend::SortedVec,
        dommax: DominantMaxKind::RangeVeb,
        shards: 9,
        path_policy: PathPolicy::Fixed(64),
        ..EngineConfig::default()
    };
    let mut restored = Engine::restore(target_config, &snapshot).unwrap();
    assert_engines_identical(&mut source, &mut restored, "config-portable restore");
}

/// Checkpoints ride the command plane: a `Snapshot` op is tick-ordered
/// against the appends around it, and a `Restore` op rebuilds the session
/// in another engine with identical state.
#[test]
fn op_plane_snapshot_and_restore_are_tick_ordered() {
    let mut engine = Engine::new(config(Backend::Auto, DominantMaxKind::Auto));
    let outcome = engine.execute(
        &Tick::new()
            .create("s", SessionKind::Unweighted)
            .append("s", vec![10, 4, 12])
            .snapshot("s")
            .append("s", vec![3, 20])
            .snapshot("s"),
    );
    assert!(outcome.fully_applied());
    assert_eq!(outcome.sessions_snapshotted, 2);
    let mid = outcome.outcomes[2].1.as_ref().unwrap().as_snapshot().unwrap().clone();
    let end = outcome.outcomes[4].1.as_ref().unwrap().as_snapshot().unwrap().clone();
    assert_eq!(mid.len(), 3, "first snapshot sees only the first append");
    assert_eq!(end.len(), 5, "second snapshot sees both appends");

    // Restore both into a second engine through the op plane and compare
    // against the source session's prefix states.
    let mut other = Engine::new(config(Backend::Auto, DominantMaxKind::Auto));
    let outcome = other.execute(&Tick::new().restore("mid", mid).restore("end", end));
    assert!(outcome.fully_applied());
    assert_eq!(outcome.sessions_restored, 2);
    assert_eq!(other.session("mid").unwrap().values(), &[10, 4, 12]);
    assert_eq!(other.session("mid").unwrap().ranks(), &[1, 1, 2]);
    assert_eq!(other.session("end").unwrap().values(), &[10, 4, 12, 3, 20]);
    assert_eq!(other.session("end").unwrap().tails(), engine.session("s").unwrap().tails());
    other.check_invariants();
}

/// Restore failure modes are typed, never partial: an occupied id, a
/// universe mismatch, and an internally inconsistent snapshot all leave
/// the target engine untouched.
#[test]
fn restore_rejects_typed_without_side_effects() {
    let mut source = Engine::new(config(Backend::Auto, DominantMaxKind::Auto));
    source.execute(&Tick::new().create("s", SessionKind::Unweighted).append("s", vec![7, 2, 9]));
    let snapshot = source.snapshot_session("s").unwrap();

    // Occupied id (both via the op plane and the direct API).
    let mut target = Engine::new(config(Backend::Auto, DominantMaxKind::Auto));
    target.create_session_kind("taken", SessionKind::Weighted);
    assert_eq!(
        target.restore_session("taken", &snapshot),
        Err(OpError::SessionExists { kind: SessionKind::Weighted })
    );
    let outcome = target.execute(&Tick::new().restore("taken", snapshot.clone()));
    assert_eq!(outcome.outcomes[0].1, Err(OpError::SessionExists { kind: SessionKind::Weighted }));

    // Universe mismatch.
    let mut small = Engine::with_universe(1 << 8);
    assert_eq!(
        small.restore_session("s", &snapshot),
        Err(OpError::UniverseMismatch { snapshot: UNIVERSE, universe: 1 << 8 })
    );
    assert_eq!(small.session_count(), 0);

    // Inconsistent snapshot (forged ranks) fails validation through every
    // restore path, and the op-level failure leaves its tick neighbours
    // untouched.
    let SessionSnapshot::Unweighted { universe, values, mut ranks, tails } = snapshot else {
        panic!("unweighted snapshot expected");
    };
    ranks[2] = 1;
    let forged = SessionSnapshot::Unweighted { universe, values, ranks, tails };
    let outcome = target.execute(
        &Tick::new().restore("forged", forged.clone()).append("ok", vec![1]).auto_create(),
    );
    assert!(matches!(outcome.outcomes[0].1, Err(OpError::InvalidSnapshot(_))));
    assert!(outcome.outcomes[1].1.is_ok(), "neighbour op unaffected");
    assert!(target.session_state("forged").is_none(), "no partial restore");
    assert!(target.restore_session("forged2", &forged).is_err());
    target.check_invariants();
}

/// The crash-point schedule: every tick appends to the journal, and a
/// snapshot artifact (snapshot bytes + journal records covered) is
/// written after every third tick.  The run is "killed" at every
/// boundary — after each journal append, between append and snapshot
/// write, and *inside* a journal append (torn record) — and recovery
/// from the surviving artifacts must reach exactly the state of an
/// uninterrupted run over the complete records.
#[test]
fn crash_at_every_boundary_recovers_to_the_uninterrupted_state() {
    let cfg = || config(Backend::Auto, DominantMaxKind::Auto);
    let ticks = schedule(9, 0xDEAD);

    // Dry run: the full journal, the byte offset after each append, and
    // the checkpoint artifacts written along the way.
    let mut journal = TickJournal::new(Vec::new());
    let mut engine = Engine::new(cfg());
    let mut append_offsets = Vec::new(); // journal length after tick i
    let mut checkpoints = Vec::new(); // (written_after_tick, bytes, records covered)
    for (t, tick) in ticks.iter().enumerate() {
        journal.record(tick).unwrap();
        append_offsets.push(journal.get_ref().len());
        engine.execute(tick);
        if (t + 1) % 3 == 0 {
            checkpoints.push((t + 1, engine.snapshot().encode(), t + 1));
        }
    }
    let journal_bytes = journal.into_inner();

    // Reference states: the uninterrupted engine after every tick count.
    let reference: Vec<EngineSnapshot> = (0..=ticks.len())
        .map(|n| {
            let mut e = Engine::new(cfg());
            for tick in &ticks[..n] {
                e.execute(tick);
            }
            e.snapshot()
        })
        .collect();

    // Crash points: every record boundary, plus torn cuts inside every
    // record (1 byte in, mid-header, mid-payload).
    let mut crash_points = vec![0usize];
    let mut prev = 0usize;
    for &end in &append_offsets {
        for cut in [prev + 1, prev + 7, prev + (end - prev) / 2, end] {
            if cut > prev && cut <= end {
                crash_points.push(cut);
            }
        }
        prev = end;
    }

    for &crash in &crash_points {
        let surviving_journal = &journal_bytes[..crash];
        let complete_records = append_offsets.iter().filter(|&&end| end <= crash).count();
        // The snapshot write happens after the journal append of its
        // tick, so an artifact survives only if the crash comes at or
        // after that append's completion.  (Crashing "between append and
        // snapshot write" = crash exactly at the append boundary of a
        // checkpoint tick: the journal record survives, the snapshot
        // doesn't.)
        // Artifact is on disk once the *next* journal append begins; at
        // the exact boundary it is still being written and is lost.
        let survived = checkpoints
            .iter()
            .rev()
            .find(|(after_tick, _, _)| crash > append_offsets[*after_tick - 1]);
        let (mut recovered, covered) = match survived {
            Some((_, bytes, records)) => {
                let snapshot = EngineSnapshot::decode(bytes).unwrap();
                (Engine::restore(cfg(), &snapshot).unwrap(), *records)
            }
            None => (Engine::new(cfg()), 0),
        };
        let report = replay_journal_from(&mut recovered, surviving_journal, covered)
            .unwrap_or_else(|e| panic!("crash at byte {crash}: replay failed: {e}"));
        assert_eq!(report.outcomes.len(), complete_records - covered, "crash at byte {crash}");
        assert_eq!(
            report.truncated_bytes,
            crash - append_offsets[..complete_records].last().copied().unwrap_or(0),
            "crash at byte {crash}: torn-tail accounting"
        );
        assert_eq!(
            recovered.snapshot(),
            reference[complete_records],
            "crash at byte {crash}: recovered state != uninterrupted state"
        );
        recovered.check_invariants();
    }
}

/// Corrupting a byte of a *complete* journal record (not a torn tail) is
/// detected and aborts replay with a typed error instead of executing a
/// damaged tick.
#[test]
fn corrupt_complete_journal_record_fails_replay_typed() {
    let ticks = schedule(3, 0xABCD);
    let mut journal = TickJournal::new(Vec::new());
    for tick in &ticks {
        journal.record(tick).unwrap();
    }
    let mut bytes = journal.into_inner();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let mut engine = Engine::new(config(Backend::Auto, DominantMaxKind::Auto));
    let err = replay_journal_from(&mut engine, &bytes, 0);
    assert!(err.is_err(), "a flipped byte in a complete record must fail replay");
}
