//! The acceptance property of the **query plane**: every answer a live
//! session serves — rank-of-element, count-at-dp, top-k, and full
//! certificate reconstruction — must be *bit-identical* to the offline
//! oracles (`lis_ranks_u64` + `lis_indices_from_ranks` for plain
//! sessions, `wlis_kind` + `wlis_indices_from_scores` for weighted ones)
//! run on the exact prefix the query observed, including queries that land
//! *between* writes inside one mixed tick.  Checked for both tail-set
//! backends and both dominant-max stores, at 1 thread and at the full
//! pool, with the two runs bit-identical to each other; certificates are
//! additionally verified to be strictly increasing (indices and values)
//! with their claimed length/score.

use plis_engine::{
    Backend, DominantMaxKind, Engine, EngineConfig, Op, OpOutput, PathPolicy, Query, QueryAnswer,
    ReadTick, SessionId, SessionKind, Tick, TickOutcome,
};
use plis_lis::{lis_indices_from_ranks, lis_ranks_u64, wlis_indices_from_scores, wlis_kind};
use plis_workloads::streaming::{
    mixed_session_fleet, read_write_mix, round_robin_ticks, weighted_session_fleet, QuerySpec,
    ReadWriteOp,
};
use std::collections::HashMap;

/// Pool size for the parallel leg: `PLIS_BENCH_THREADS`, else the hardware
/// parallelism, floored at 2 so single-core machines still split.
fn parallel_threads() -> usize {
    std::env::var("PLIS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(2)
}

fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

/// Offline expected answers for one query batch over a *plain* prefix.
fn plain_oracle(prefix: &[u64], specs: &[QuerySpec]) -> Vec<QueryAnswer> {
    let (ranks, k) = lis_ranks_u64(prefix);
    specs
        .iter()
        .map(|&spec| match spec {
            QuerySpec::RankOf(i) => QueryAnswer::Rank(ranks.get(i).map(|&r| r as u64)),
            QuerySpec::CountAt(v) => {
                QueryAnswer::Count(ranks.iter().filter(|&&r| r as u64 == v).count())
            }
            QuerySpec::TopK(want) => QueryAnswer::TopK(top_k_oracle(
                &ranks.iter().map(|&r| r as u64).collect::<Vec<_>>(),
                want,
            )),
            QuerySpec::Certificate => {
                let indices = lis_indices_from_ranks(prefix, &ranks, k);
                assert_certificate(prefix, &indices);
                assert_eq!(indices.len() as u64, k as u64, "claimed length must match");
                QueryAnswer::Certificate(plis_engine::Certificate { indices, claimed: k as u64 })
            }
        })
        .collect()
}

/// Offline expected answers for one query batch over a *weighted* prefix.
fn weighted_oracle(
    prefix: &[(u64, u64)],
    specs: &[QuerySpec],
    kind: DominantMaxKind,
) -> Vec<QueryAnswer> {
    let values: Vec<u64> = prefix.iter().map(|&(v, _)| v).collect();
    let weights: Vec<u64> = prefix.iter().map(|&(_, w)| w).collect();
    let scores = wlis_kind(kind, &values, &weights);
    let best = scores.iter().copied().max().unwrap_or(0);
    specs
        .iter()
        .map(|&spec| match spec {
            QuerySpec::RankOf(i) => QueryAnswer::Rank(scores.get(i).copied()),
            QuerySpec::CountAt(v) => QueryAnswer::Count(scores.iter().filter(|&&s| s == v).count()),
            QuerySpec::TopK(want) => QueryAnswer::TopK(top_k_oracle(&scores, want)),
            QuerySpec::Certificate => {
                let indices = wlis_indices_from_scores(&values, &weights, &scores);
                assert_certificate(&values, &indices);
                let total: u64 = indices.iter().map(|&i| weights[i]).sum();
                assert_eq!(total, best, "claimed score must match the certificate weight");
                QueryAnswer::Certificate(plis_engine::Certificate { indices, claimed: best })
            }
        })
        .collect()
}

/// Quadratic top-k reference: dp descending, ties by ascending index.
fn top_k_oracle(dp: &[u64], k: usize) -> Vec<(usize, u64)> {
    let mut order: Vec<(usize, u64)> = dp.iter().copied().enumerate().collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    order.truncate(k);
    order
}

/// The structural acceptance check: certificate indices strictly increase
/// and so do the values along them.
fn assert_certificate(values: &[u64], indices: &[usize]) {
    assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must increase: {indices:?}");
    assert!(
        indices.windows(2).all(|w| values[w[0]] < values[w[1]]),
        "values must strictly increase along the certificate"
    );
}

/// One tick of weighted read/write slots, pre-conversion.
type WeightedOpTick = Vec<(SessionId, ReadWriteOp<(u64, u64)>)>;
/// One named weighted read/write schedule.
type WeightedSchedule = (String, Vec<ReadWriteOp<(u64, u64)>>);

/// Run a fleet of plain read/write schedules through an engine, checking
/// every query answer against the offline oracle on the exact prefix it
/// observed.  Returns all tick outcomes for determinism comparison.
fn run_plain_checked(
    ticks: &[Vec<(SessionId, ReadWriteOp<u64>)>],
    universe: u64,
    backend: Backend,
    threads: usize,
) -> Vec<TickOutcome> {
    on_pool(threads, || {
        let mut engine = Engine::new(EngineConfig {
            universe,
            backend,
            shards: 4,
            path_policy: PathPolicy::Fixed(48),
            ..EngineConfig::default()
        });
        let mut prefixes: HashMap<String, Vec<u64>> = HashMap::new();
        let mut outcomes = Vec::new();
        for tick in ticks {
            // The workload's read/write ops map 1:1 onto command-plane ops.
            let command: Tick = tick.iter().cloned().collect::<Tick>().auto_create();
            let outcome = engine.execute(&command);
            assert!(outcome.fully_applied(), "well-formed mixed ticks land every op");

            // Replay the tick against growing offline prefixes: a query
            // slot must equal the oracle on everything written before it.
            for ((id, op), (_, got)) in tick.iter().zip(&outcome.outcomes) {
                let prefix = prefixes.entry(id.as_str().to_string()).or_default();
                let got = got.as_ref().expect("no op failed");
                match op {
                    ReadWriteOp::Write(b) => {
                        prefix.extend_from_slice(b);
                        assert!(got.as_appended().is_some(), "write slot must report an append");
                    }
                    ReadWriteOp::Read(specs) => {
                        let want = plain_oracle(prefix, specs);
                        let answered = got.as_answered().expect("read slot must report answers");
                        assert_eq!(answered.kind, Some(SessionKind::Unweighted));
                        assert_eq!(
                            answered.answers, want,
                            "session {id} diverged from the offline oracle ({threads} threads)"
                        );
                    }
                }
            }
            outcomes.push(outcome);
        }
        engine.check_invariants();
        outcomes
    })
}

/// The weighted analogue of [`run_plain_checked`].
fn run_weighted_checked(
    ticks: &[WeightedOpTick],
    universe: u64,
    dommax: DominantMaxKind,
    threads: usize,
) -> Vec<TickOutcome> {
    on_pool(threads, || {
        let mut engine = Engine::new(EngineConfig {
            universe,
            dommax,
            default_kind: SessionKind::Weighted,
            shards: 4,
            path_policy: PathPolicy::Fixed(48),
            ..EngineConfig::default()
        });
        let mut prefixes: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
        let mut outcomes = Vec::new();
        for tick in ticks {
            let command: Tick = tick.iter().cloned().collect::<Tick>().auto_create();
            let outcome = engine.execute(&command);
            assert!(outcome.fully_applied(), "well-formed weighted ticks land every op");
            for ((id, op), (_, got)) in tick.iter().zip(&outcome.outcomes) {
                let prefix = prefixes.entry(id.as_str().to_string()).or_default();
                let got = got.as_ref().expect("no op failed");
                match op {
                    ReadWriteOp::Write(b) => prefix.extend_from_slice(b),
                    ReadWriteOp::Read(specs) => {
                        let want = weighted_oracle(prefix, specs, dommax);
                        let answered = got.as_answered().expect("read slot must report answers");
                        assert_eq!(answered.kind, Some(SessionKind::Weighted));
                        assert_eq!(
                            answered.answers, want,
                            "session {id} diverged from the offline oracle ({threads} threads)"
                        );
                    }
                }
            }
            outcomes.push(outcome);
        }
        engine.check_invariants();
        outcomes
    })
}

fn assert_identical(a: &[TickOutcome], b: &[TickOutcome], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}");
    for (t, (x, y)) in a.iter().zip(b).enumerate() {
        // worker_threads is observational and intentionally excluded.
        assert_eq!(x.outcomes, y.outcomes, "{label}: tick {t} outcomes diverged");
        assert_eq!(x.total_ingested, y.total_ingested, "{label}: tick {t}");
        assert_eq!(x.total_queries, y.total_queries, "{label}: tick {t}");
    }
}

#[test]
fn plain_queries_match_offline_oracles_on_both_backends_and_pools() {
    let (fleet, universe) = mixed_session_fleet(4, 1_000, 64, 0.35, 5, 0xACE);
    let ticks = round_robin_ticks(&fleet, |s| SessionId::from(s));
    assert!(ticks.len() > 8, "schedule should span many ticks");
    let queries: usize = fleet.iter().flat_map(|(_, ops)| ops.iter().map(|o| o.queries())).sum();
    assert!(queries > 50, "schedule should carry real read traffic, got {queries}");

    let mut per_backend = Vec::new();
    for backend in [Backend::Veb, Backend::SortedVec] {
        let seq = run_plain_checked(&ticks, universe, backend, 1);
        let par = run_plain_checked(&ticks, universe, backend, parallel_threads());
        assert_identical(&seq, &par, &format!("{backend:?}: 1-thread vs full pool"));
        per_backend.push(seq);
    }
    // Tail-set backends must serve bit-identical answers.
    assert_identical(&per_backend[0], &per_backend[1], "veb vs sorted-vec");
}

#[test]
fn weighted_queries_match_offline_oracles_on_both_stores_and_pools() {
    // Weighted fleets have no mixed generator of their own: interleave
    // reads into each weighted stream with the shared mixer.
    let (fleet, universe) = weighted_session_fleet(3, 700, 48, 30, 0xBEE);
    let mixed: Vec<WeightedSchedule> = fleet
        .iter()
        .enumerate()
        .map(|(i, (name, batches))| {
            (name.clone(), read_write_mix(batches, 0.35, 5, 0xBEE + i as u64))
        })
        .collect();
    let ticks = round_robin_ticks(&mixed, |s| SessionId::from(s));

    let mut per_store = Vec::new();
    for dommax in [DominantMaxKind::RangeTree, DominantMaxKind::RangeVeb] {
        let seq = run_weighted_checked(&ticks, universe, dommax, 1);
        let par = run_weighted_checked(&ticks, universe, dommax, parallel_threads());
        assert_identical(&seq, &par, &format!("{dommax:?}: 1-thread vs full pool"));
        per_store.push(seq);
    }
    // Both dominant-max stores must serve bit-identical answers.
    assert_identical(&per_store[0], &per_store[1], "range-tree vs range-veb");
}

#[test]
fn read_only_ticks_match_the_mixed_path() {
    // After ingesting everything, a read-only execute_read over &self must
    // answer exactly like query slots appended to a mixed tick.
    let (fleet, universe) = mixed_session_fleet(3, 800, 64, 0.0, 4, 0xF00);
    let mut engine = Engine::new(EngineConfig { universe, shards: 3, ..EngineConfig::default() });
    let mut prefixes: HashMap<String, Vec<u64>> = HashMap::new();
    for tick in round_robin_ticks(&fleet, |s| SessionId::from(s)) {
        let command: Tick = tick
            .into_iter()
            .map(|(id, op)| {
                match &op {
                    ReadWriteOp::Write(b) => {
                        prefixes.entry(id.as_str().to_string()).or_default().extend_from_slice(b)
                    }
                    ReadWriteOp::Read(_) => unreachable!("mix 0.0 generates no reads"),
                }
                (id, Op::from(op))
            })
            .collect::<Tick>()
            .auto_create();
        assert!(engine.execute(&command).fully_applied());
    }

    let specs =
        [QuerySpec::RankOf(17), QuerySpec::CountAt(3), QuerySpec::TopK(6), QuerySpec::Certificate];
    let tick: ReadTick = prefixes
        .keys()
        .map(|name| {
            (
                SessionId::from(name.as_str()),
                specs.iter().copied().map(Query::from).collect::<Vec<_>>(),
            )
        })
        .collect();
    let outcome = engine.execute_read(&tick);
    assert!(outcome.fully_answered());
    assert_eq!(outcome.sessions_queried, prefixes.len());
    assert_eq!(outcome.sessions_missing, 0);
    assert_eq!(outcome.total_queries, prefixes.len() * specs.len());
    for (id, got) in &outcome.outcomes {
        let want = plain_oracle(&prefixes[id.as_str()], &specs);
        assert_eq!(got.as_ref().unwrap().answers, want, "read-only answers for {id}");
    }

    // And slot-for-slot like the same queries as Op::Query slots.
    let mixed: Tick =
        tick.slots().iter().map(|(id, q)| (id.clone(), Op::Query(q.clone()))).collect();
    let via_execute = engine.execute(&mixed);
    for ((_, read), (_, slot)) in outcome.outcomes.iter().zip(&via_execute.outcomes) {
        let OpOutput::Answered(report) = slot.as_ref().unwrap() else {
            panic!("query slot must answer")
        };
        assert_eq!(read.as_ref().unwrap(), report, "execute_read vs execute diverged");
    }
}
