//! The acceptance property of the streaming engine: after every ingested
//! batch, a session's state agrees with the offline oracle
//! (`plis_lis::lis_ranks_u64`, Algorithm 1 of the paper) run on the
//! concatenated prefix — for multiple workload patterns, random batch
//! sizes, and both backends.

use plis_engine::{Backend, Engine, EngineConfig, PathPolicy, SessionId, StreamingLis, Tick};
use plis_lis::lis_ranks_u64;
use plis_workloads::{line_pattern, random_permutation, range_pattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Split `values` into random batches with sizes in `[1, max_batch]`.
fn random_batches(values: &[u64], max_batch: usize, rng: &mut StdRng) -> Vec<Vec<u64>> {
    let mut batches = Vec::new();
    let mut rest = values;
    while !rest.is_empty() {
        let take = rng.gen_range(1..=max_batch.min(rest.len()));
        let (head, tail) = rest.split_at(take);
        batches.push(head.to_vec());
        rest = tail;
    }
    batches
}

fn check_stream_against_oracle(values: &[u64], universe: u64, backend: Backend, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    // A small parallel threshold so the ParallelMerge path is exercised by
    // most batches; a second session pinned to the sequential path
    // cross-checks it.
    let mut session = StreamingLis::new(universe, backend).with_par_threshold(32);
    let mut sequential = StreamingLis::new(universe, backend).with_par_threshold(usize::MAX);
    let mut prefix: Vec<u64> = Vec::new();
    for batch in random_batches(values, 500, &mut rng) {
        session.ingest(&batch);
        sequential.ingest(&batch);
        prefix.extend_from_slice(&batch);

        let (oracle_ranks, oracle_k) = lis_ranks_u64(&prefix);
        assert_eq!(session.lis_length(), oracle_k, "LIS length diverged from the oracle");
        assert_eq!(session.ranks(), oracle_ranks.as_slice(), "ranks diverged from the oracle");
        assert_eq!(session.ranks(), sequential.ranks(), "parallel and sequential paths diverged");
        assert_eq!(session.tails(), sequential.tails());
        session.check_invariants();
    }
    // The reconstructed LIS of the final state is valid and optimal.
    let lis = session.reconstruct_lis();
    assert_eq!(lis.len() as u32, session.lis_length());
    assert!(lis.windows(2).all(|w| w[0] < w[1]));
    assert!(lis.windows(2).all(|w| values[w[0]] < values[w[1]]));
}

#[test]
fn range_pattern_matches_oracle_under_random_batching() {
    for (trial, &k_prime) in [4u64, 64, 900].iter().enumerate() {
        let values = range_pattern(4_000, k_prime, 0xAA + trial as u64);
        let universe = k_prime + 1;
        check_stream_against_oracle(&values, universe, Backend::Veb, 17 + trial as u64);
        check_stream_against_oracle(&values, universe, Backend::SortedVec, 18 + trial as u64);
    }
}

#[test]
fn line_pattern_matches_oracle_under_random_batching() {
    for (trial, &noise) in [3u64, 500, 5_000].iter().enumerate() {
        let values = line_pattern(4_000, 1, noise, 0xBB + trial as u64);
        let universe = values.iter().max().unwrap() + 1;
        check_stream_against_oracle(&values, universe, Backend::Veb, 27 + trial as u64);
        check_stream_against_oracle(&values, universe, Backend::SortedVec, 28 + trial as u64);
    }
}

#[test]
fn random_permutation_matches_oracle_under_random_batching() {
    for trial in 0..3u64 {
        let n = 3_000 + 500 * trial as usize;
        let values = random_permutation(n, 0xCC + trial);
        check_stream_against_oracle(&values, n as u64, Backend::Veb, 37 + trial);
        check_stream_against_oracle(&values, n as u64, Backend::Auto, 38 + trial);
    }
}

#[test]
fn adversarial_patterns_match_oracle() {
    use plis_workloads::adversarial;
    let n = 2_000;
    for (name, values) in [
        ("increasing", adversarial::increasing(n)),
        ("decreasing", adversarial::decreasing(n)),
        ("constant", adversarial::constant(n, 7)),
        ("sawtooth", adversarial::sawtooth(n, 23)),
    ] {
        let universe = values.iter().max().unwrap() + 1;
        let mut rng = StdRng::seed_from_u64(0xD0D0);
        let mut session = StreamingLis::new(universe, Backend::Auto).with_par_threshold(64);
        let mut prefix = Vec::new();
        for batch in random_batches(&values, 333, &mut rng) {
            session.ingest(&batch);
            prefix.extend_from_slice(&batch);
        }
        let (oracle_ranks, oracle_k) = lis_ranks_u64(&prefix);
        assert_eq!(session.lis_length(), oracle_k, "{name}");
        assert_eq!(session.ranks(), oracle_ranks.as_slice(), "{name}");
        session.check_invariants();
    }
}

#[test]
fn engine_fleet_matches_oracle_per_session() {
    let universe = 1u64 << 13;
    let mut rng = StdRng::seed_from_u64(0xE3E3);
    let mut engine = Engine::new(EngineConfig {
        universe,
        backend: Backend::Auto,
        shards: 4,
        path_policy: PathPolicy::Fixed(64),
        ..EngineConfig::default()
    });
    // Heterogeneous fleet: each session streams a different pattern.
    let streams: Vec<(SessionId, Vec<u64>)> = vec![
        (
            SessionId::from("range"),
            range_pattern(3_000, 40, 1).iter().map(|&v| v % universe).collect(),
        ),
        (
            SessionId::from("line"),
            line_pattern(3_000, 1, 800, 2).iter().map(|&v| v % universe).collect(),
        ),
        (
            SessionId::from("perm"),
            random_permutation(3_000, 3).iter().map(|&v| v % universe).collect(),
        ),
    ];
    for (id, _) in &streams {
        assert!(engine.create_session_kind(id.clone(), plis_engine::SessionKind::Unweighted));
    }
    let mut cursors: Vec<usize> = vec![0; streams.len()];
    while cursors.iter().zip(&streams).any(|(&c, (_, v))| c < v.len()) {
        let mut tick = Tick::new();
        for (i, (id, values)) in streams.iter().enumerate() {
            if cursors[i] < values.len() {
                let take = rng.gen_range(1..=400usize).min(values.len() - cursors[i]);
                tick.push(id.clone(), values[cursors[i]..cursors[i] + take].to_vec());
                cursors[i] += take;
            }
        }
        assert!(engine.execute(&tick).fully_applied());
    }
    for (id, values) in &streams {
        let session = engine.session(id.as_str()).expect("session exists");
        let (oracle_ranks, oracle_k) = lis_ranks_u64(values);
        assert_eq!(session.lis_length(), oracle_k, "session {id}");
        assert_eq!(session.ranks(), oracle_ranks.as_slice(), "session {id}");
    }
    engine.check_invariants();
}
