//! Steady-state allocation discipline: once a session is warm and
//! reserved, sequential-path ingest performs **zero** heap allocations.
//!
//! The whole test binary runs under the counting global allocator
//! (`plis-testalloc`), which reports every allocation into
//! `plis_telemetry::allocmeter`.  Each case warms a session past its
//! growth phase, calls `reserve` for the measurement window, snapshots
//! the allocation tally, ingests the window, and asserts the tally did
//! not move — on both session kinds, across the tail-set backends, at
//! one thread and on an oversubscribed pool (this container has one
//! core, so `num_threads(2)` is the "full pool" leg; the sequential
//! path never forks, which is exactly why it can be allocation-free).
//!
//! The parallel merge path is *excluded* by pinning
//! `PathPolicy::Fixed(usize::MAX)`: Algorithm 1 rebuilds a tournament
//! tree per call, whose internal allocations are amortised over the
//! whole merge and accounted for by the engine's `allocs_per_elem`
//! telemetry instead (asserted to floor to zero in the engine-level
//! case below).

use plis_engine::{
    Backend, DominantMaxKind, Engine, EngineConfig, PathPolicy, SessionKind, StreamingLis, Tick,
    WeightedStreamingLis,
};
use plis_telemetry::alloc_tally;
use plis_testalloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const UNIVERSE: u64 = 1 << 16;
const BATCH: usize = 64;
const WARMUP: usize = 4_096;
const MEASURE: usize = 512;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn stream(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n).map(|_| xorshift(&mut state) % UNIVERSE).collect()
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

/// Warm an unweighted session on `backend`, then assert the measurement
/// window allocates nothing.
fn drive_unweighted(backend: Backend, label: &str) {
    let data = stream(WARMUP + MEASURE, 0x5EED_0001);
    let mut s =
        StreamingLis::new(UNIVERSE, backend).with_path_policy(PathPolicy::Fixed(usize::MAX));
    for chunk in data[..WARMUP].chunks(BATCH) {
        s.ingest(chunk);
    }
    s.reserve(MEASURE);
    let lis_before = s.lis_length();
    let before = alloc_tally();
    for chunk in data[WARMUP..].chunks(BATCH) {
        s.ingest(chunk);
    }
    let delta = alloc_tally().since(before);
    assert_eq!(
        delta.allocs, 0,
        "{label}: {} allocations ({} bytes) in a warm steady-state window",
        delta.allocs, delta.bytes
    );
    // The window did real work, not a no-op.
    assert_eq!(s.len(), WARMUP + MEASURE);
    assert!(s.lis_length() >= lis_before);
    s.check_invariants();
}

/// Warm a weighted session on `kind`, then assert the measurement window
/// allocates nothing.
fn drive_weighted(kind: DominantMaxKind, label: &str) {
    let values = stream(WARMUP + MEASURE, 0x5EED_0002);
    let pairs: Vec<(u64, u64)> = {
        let mut state = 0x5EED_0003u64;
        values.iter().map(|&v| (v, 1 + xorshift(&mut state) % 50)).collect()
    };
    let mut s =
        WeightedStreamingLis::new(UNIVERSE, kind).with_path_policy(PathPolicy::Fixed(usize::MAX));
    for chunk in pairs[..WARMUP].chunks(BATCH) {
        s.ingest(chunk);
    }
    s.reserve(MEASURE);
    let before = alloc_tally();
    for chunk in pairs[WARMUP..].chunks(BATCH) {
        s.ingest(chunk);
    }
    let delta = alloc_tally().since(before);
    assert_eq!(
        delta.allocs, 0,
        "{label}: {} allocations ({} bytes) in a warm steady-state window",
        delta.allocs, delta.bytes
    );
    assert_eq!(s.len(), WARMUP + MEASURE);
    s.check_invariants();
}

#[test]
fn unweighted_steady_state_is_allocation_free_on_every_backend() {
    for (backend, label) in
        [(Backend::Veb, "veb"), (Backend::SortedVec, "sorted-vec"), (Backend::Auto, "auto")]
    {
        drive_unweighted(backend, label);
    }
}

#[test]
fn weighted_steady_state_is_allocation_free_on_both_stores() {
    for (kind, label) in
        [(DominantMaxKind::RangeTree, "range-tree"), (DominantMaxKind::RangeVeb, "range-veb")]
    {
        drive_weighted(kind, label);
    }
}

#[test]
fn steady_state_discipline_holds_at_one_thread_and_on_the_pool() {
    with_pool(1, || drive_unweighted(Backend::Veb, "veb @ 1 thread"));
    with_pool(2, || drive_unweighted(Backend::Veb, "veb @ pool"));
    with_pool(1, || drive_weighted(DominantMaxKind::RangeTree, "range-tree @ 1 thread"));
    with_pool(2, || drive_weighted(DominantMaxKind::RangeTree, "range-tree @ pool"));
}

/// Engine-level discipline: the tick envelope may allocate `O(1)` per
/// tick (result vectors, outcome assembly), but amortised over real
/// batches the telemetry floor `allocs_per_elem` must read zero — the
/// same figure the streaming bench records per cell.  The assertions
/// read `metrics_snapshot()`, which is documented all-zero when the
/// `telemetry` feature is off, so the test only exists on that feature.
#[cfg(feature = "telemetry")]
#[test]
fn engine_allocs_per_elem_floors_to_zero() {
    let config = EngineConfig {
        universe: UNIVERSE,
        shards: 2,
        path_policy: PathPolicy::Fixed(usize::MAX),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config);
    let names = ["a", "b", "c", "d"];
    for name in names {
        engine.create_session_kind(name, SessionKind::Unweighted);
    }
    let data = stream(WARMUP, 0x5EED_0004);
    for chunk in data.chunks(BATCH) {
        let mut tick = Tick::new();
        for name in names {
            tick.push(name, plis_engine::Op::Append(chunk.to_vec()));
        }
        assert!(engine.execute(&tick).fully_applied());
    }
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.elems_ingested, (WARMUP * names.len()) as u64);
    assert!(snap.alloc_count > 0, "the counting allocator must be live");
    assert_eq!(
        snap.allocs_per_elem, 0,
        "tick envelope allocations must amortise away: {} allocs over {} elems",
        snap.alloc_count, snap.elems_ingested
    );
    assert!(snap.arena_bytes > 0, "warm sessions must report retained arena bytes");
}
