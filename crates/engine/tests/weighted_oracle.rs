//! The acceptance property of the *weighted* engine path: after every
//! executed tick, a weighted session's dp scores must equal the offline
//! Algorithm-2 oracle (`plis_lis::wlis_kind`, itself differentially tested
//! against the quadratic dp in `crates/lis/tests/wlis_oracle.rs`) run on
//! the concatenated `(value, weight)` prefix — for both dominant-max
//! stores, at 1 thread and at the full pool, with the two runs
//! bit-identical to each other and to the other store.

use plis_engine::{
    BatchReport, DominantMaxKind, Engine, EngineConfig, OpOutput, PathPolicy, SessionId,
    SessionKind, Tick, TickOutcome,
};
use plis_lis::wlis_kind;
use plis_workloads::streaming::{round_robin_ticks, weighted_session_fleet};
use std::collections::HashMap;

/// One engine tick of weighted batches (the raw schedule shape).
type WeightedTick = Vec<(SessionId, Vec<(u64, u64)>)>;
/// `(session, scores, frontier)` snapshot.
type SessionSnapshot = (String, Vec<u64>, Vec<(u64, u64)>);

/// Pool size for the parallel leg: `PLIS_BENCH_THREADS`, else the hardware
/// parallelism, floored at 2 so single-core machines still split.
fn parallel_threads() -> usize {
    std::env::var("PLIS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(2)
}

fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

struct RunOutcome {
    tick_outcomes: Vec<TickOutcome>,
    /// One [`SessionSnapshot`] per session, sorted by session id.
    final_state: Vec<SessionSnapshot>,
}

/// Stream the fleet through a weighted engine on `threads` workers,
/// checking every session against the offline oracle after every tick.
fn run_checked(
    ticks: &[WeightedTick],
    universe: u64,
    dommax: DominantMaxKind,
    threads: usize,
) -> RunOutcome {
    on_pool(threads, || {
        let mut engine = Engine::new(EngineConfig {
            universe,
            dommax,
            default_kind: SessionKind::Weighted,
            shards: 4,
            // Low threshold so the parallel merge (frontier ++ batch) path
            // carries most of the traffic.
            path_policy: PathPolicy::Fixed(48),
            ..EngineConfig::default()
        });
        let mut prefixes: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
        let mut tick_outcomes = Vec::new();
        for tick in ticks {
            let command: Tick = tick.iter().cloned().collect::<Tick>().auto_create();
            let outcome = engine.execute(&command);
            assert!(outcome.fully_applied(), "well-formed weighted ticks land every op");
            assert!(outcome
                .outputs()
                .all(|(_, o)| matches!(o, OpOutput::Appended(BatchReport::Weighted(_)))));
            assert_eq!(outcome.weighted_sessions_touched, outcome.sessions_touched);
            tick_outcomes.push(outcome);
            for (id, batch) in tick {
                prefixes.entry(id.as_str().to_string()).or_default().extend_from_slice(batch);
            }
            // The acceptance criterion: scores equal the offline oracle on
            // the concatenated prefix, after every tick.
            for (name, prefix) in &prefixes {
                let session = engine.weighted_session(name).expect("session exists");
                let values: Vec<u64> = prefix.iter().map(|&(v, _)| v).collect();
                let weights: Vec<u64> = prefix.iter().map(|&(_, w)| w).collect();
                let want = wlis_kind(dommax, &values, &weights);
                assert_eq!(
                    session.scores(),
                    want.as_slice(),
                    "session {name} diverged from the offline WLIS oracle ({} threads)",
                    threads
                );
            }
        }
        engine.check_invariants();
        let final_state = engine
            .session_ids()
            .iter()
            .map(|id| {
                let s = engine.weighted_session(id.as_str()).expect("weighted session");
                (id.as_str().to_string(), s.scores().to_vec(), s.frontier().to_vec())
            })
            .collect();
        RunOutcome { tick_outcomes, final_state }
    })
}

fn assert_identical(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.tick_outcomes.len(), b.tick_outcomes.len(), "{label}");
    for (t, (x, y)) in a.tick_outcomes.iter().zip(b.tick_outcomes.iter()).enumerate() {
        // worker_threads is observational and intentionally excluded.
        assert_eq!(x.outcomes, y.outcomes, "{label}: tick {t} outcomes diverged");
        assert_eq!(x.total_ingested, y.total_ingested, "{label}: tick {t}");
    }
    assert_eq!(a.final_state, b.final_state, "{label}: final scores/frontiers diverged");
}

#[test]
fn weighted_sessions_match_offline_oracle_on_both_stores_and_pools() {
    let (fleet, universe) = weighted_session_fleet(5, 1_200, 64, 40, 0x5EED);
    let ticks = round_robin_ticks(&fleet, |s| SessionId::from(s));
    assert!(ticks.len() > 10, "schedule should span many ticks");

    let mut per_store = Vec::new();
    for dommax in [DominantMaxKind::RangeTree, DominantMaxKind::RangeVeb] {
        let seq = run_checked(&ticks, universe, dommax, 1);
        let par = run_checked(&ticks, universe, dommax, parallel_threads());
        assert_identical(&seq, &par, &format!("{dommax:?}: 1-thread vs full pool"));
        per_store.push(seq);
    }
    // Both dominant-max stores must agree bit-for-bit on scores (outcomes
    // include frontier sizes, which are store-independent too).
    assert_identical(&per_store[0], &per_store[1], "range-tree vs range-veb");
}

#[test]
fn mixed_ticks_serve_both_kinds_against_their_oracles() {
    use plis_lis::lis_ranks_u64;
    use plis_workloads::streaming::session_fleet;

    let n = 900;
    let (plain_fleet, u1) = session_fleet(2, n, 48, 0xA1);
    let (weighted_fleet, u2) = weighted_session_fleet(2, n, 48, 25, 0xB2);
    let universe = u1.max(u2);
    let mut engine = Engine::new(EngineConfig {
        universe,
        shards: 3,
        path_policy: PathPolicy::Fixed(32),
        ..EngineConfig::default()
    });

    let rounds = plain_fleet
        .iter()
        .map(|(_, b)| b.len())
        .chain(weighted_fleet.iter().map(|(_, b)| b.len()))
        .max()
        .unwrap();
    for round in 0..rounds {
        let mut tick = Tick::new().auto_create();
        for (name, batches) in &plain_fleet {
            if let Some(b) = batches.get(round) {
                tick.push(name.as_str(), b.clone());
            }
        }
        for (name, batches) in &weighted_fleet {
            if let Some(b) = batches.get(round) {
                tick.push(name.as_str(), b.clone());
            }
        }
        let outcome = engine.execute(&tick);
        assert!(outcome.fully_applied());
        assert!(outcome.weighted_sessions_touched <= outcome.sessions_touched);
    }

    for (name, batches) in &plain_fleet {
        let values: Vec<u64> = batches.iter().flatten().copied().collect();
        let (want_ranks, want_k) = lis_ranks_u64(&values);
        let session = engine.session(name).expect("plain session");
        assert_eq!(session.lis_length(), want_k, "session {name}");
        assert_eq!(session.ranks(), want_ranks.as_slice(), "session {name}");
    }
    for (name, batches) in &weighted_fleet {
        let pairs: Vec<(u64, u64)> = batches.iter().flatten().copied().collect();
        let values: Vec<u64> = pairs.iter().map(|&(v, _)| v).collect();
        let weights: Vec<u64> = pairs.iter().map(|&(_, w)| w).collect();
        let want = wlis_kind(DominantMaxKind::Auto, &values, &weights);
        let session = engine.weighted_session(name).expect("weighted session");
        assert_eq!(session.scores(), want.as_slice(), "session {name}");
    }
    engine.check_invariants();
}
