//! The telemetry plane's engine-level guarantees:
//!
//! 1. **Counters reconcile with outcomes** — ticks recorded equals ticks
//!    executed, and the op/element/query counters match the aggregates the
//!    [`TickOutcome`]s themselves report.
//! 2. **Determinism neutrality** — per-op outcomes and final session
//!    state are bit-identical with telemetry enabled vs disabled, at one
//!    thread and at the full pool (the wall-clock fields are excluded
//!    from outcome `==` by the structural-equality invariant of
//!    `plis_engine::op`).
//! 3. **Histogram semantics** — merge is associative and the percentile
//!    bounds hold on known inputs (the engine-facing complement of the
//!    unit tests inside `plis-telemetry`).
//!
//! The whole file is gated on the `telemetry` feature: a
//! `--no-default-features` build compiles it to nothing (the no-op plane
//! has nothing to reconcile), which CI exercises separately.
#![cfg(feature = "telemetry")]

use plis_engine::{
    Backend, Engine, EngineConfig, MemorySink, PathPolicy, Query, ReadTick, SessionId, SessionKind,
    Tick, TickOutcome, TraceSink,
};
use plis_telemetry::AtomicHistogram;
use plis_workloads::streaming::{round_robin_ticks, session_fleet};

/// Pool size for the parallel legs (see `determinism.rs`).
fn parallel_threads() -> usize {
    std::env::var("PLIS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(2)
}

fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

fn command_ticks(fleet: &[(String, Vec<Vec<u64>>)]) -> Vec<Tick> {
    round_robin_ticks(fleet, |s| SessionId::from(s))
        .into_iter()
        .map(|tick| tick.into_iter().collect::<Tick>().auto_create())
        .collect()
}

#[test]
fn counters_reconcile_with_outcomes() {
    let (fleet, universe) = session_fleet(5, 2_000, 80, 0xA11CE);
    let ticks = command_ticks(&fleet);
    let config = EngineConfig {
        universe,
        shards: 4,
        path_policy: PathPolicy::Fixed(64),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(config);
    assert!(engine.metrics().is_enabled(), "telemetry must default on");

    let outcomes: Vec<TickOutcome> = ticks.iter().map(|t| engine.execute(t)).collect();
    let read = engine.execute_read(
        &ReadTick::new()
            .query(fleet[0].0.as_str(), Query::TopK(3))
            .query("missing-session", Query::RankOf(0)),
    );

    let snap = engine.metrics_snapshot();
    assert_eq!(snap.ticks as usize, ticks.len(), "one tick recorded per execute");
    assert_eq!(snap.read_ticks, 1, "one read tick recorded per execute_read");
    let want_elems: usize = outcomes.iter().map(|o| o.total_ingested).sum();
    assert_eq!(snap.elems_ingested as usize, want_elems, "element counter vs outcomes");
    let want_appends: usize = outcomes
        .iter()
        .map(|o| o.outputs().filter(|(_, out)| out.as_appended().is_some()).count())
        .sum();
    assert_eq!(snap.ops_appended as usize, want_appends, "append-op counter vs outcomes");
    assert_eq!(
        snap.seq_ingests + snap.par_merge_ingests,
        snap.ops_appended,
        "every landed append took exactly one ingest path"
    );
    assert!(snap.par_merge_ingests > 0, "low threshold must exercise the parallel path");
    assert!(snap.veb_delta_elems > 0, "parallel ingests must move tail-set deltas");
    // The read tick: one answered query batch, one failed (missing id).
    assert_eq!(snap.queries_answered as usize, read.total_queries);
    assert_eq!(snap.ops_failed, 1);
    // Latency histograms saw every tick, and memory accounting is live.
    assert_eq!(snap.tick_latency.count() as usize, ticks.len());
    assert_eq!(snap.read_latency.count(), 1);
    assert!(snap.op_latency.count() > 0);
    assert_eq!(snap.sessions as usize, engine.session_count());
    assert!(snap.session_bytes > 0, "live sessions must account bytes");
    assert_eq!(snap.shard_bytes.len(), 4, "one memory cell per shard");
    assert_eq!(snap.shard_bytes.iter().sum::<u64>(), snap.session_bytes);
}

#[test]
fn disabling_telemetry_stops_recording() {
    let mut engine = Engine::with_universe(1 << 12);
    engine.metrics().set_enabled(false);
    let outcome = engine.execute(&Tick::new().auto_create().append("s", vec![3u64, 1, 4]));
    assert!(outcome.fully_applied());
    assert_eq!(outcome.elapsed_ns, 0, "disabled telemetry must not time ticks");
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.ticks, 0);
    assert_eq!(snap.elems_ingested, 0);
    assert_eq!(snap.tick_latency.count(), 0);
    // Re-enable: recording resumes on the same registry.
    engine.metrics().set_enabled(true);
    let outcome = engine.execute(&Tick::new().append("s", vec![5u64]));
    assert!(outcome.elapsed_ns > 0, "enabled telemetry must time ticks");
    assert_eq!(engine.metrics_snapshot().ticks, 1);
}

/// Final per-session state: `(session, ranks, tails)` sorted by id.
type FinalState = Vec<(String, Vec<u32>, Vec<u64>)>;

/// Run a schedule and return everything algorithmic about it: per-op
/// outcomes and final per-session state.
fn run_outcomes(
    threads: usize,
    ticks: &[Tick],
    config: &EngineConfig,
    telemetry: bool,
) -> (Vec<TickOutcome>, FinalState) {
    on_pool(threads, || {
        let mut engine = Engine::new(config.clone());
        engine.metrics().set_enabled(telemetry);
        if telemetry {
            // A live trace sink must be as outcome-neutral as the counters.
            engine.set_trace_sink(Some(TraceSink::new(MemorySink::default())));
        }
        let outcomes: Vec<TickOutcome> = ticks.iter().map(|t| engine.execute(t)).collect();
        engine.check_invariants();
        let state = engine
            .session_ids()
            .iter()
            .map(|id| {
                let s = engine.session(id.as_str()).expect("unweighted session");
                (id.as_str().to_string(), s.ranks().to_vec(), s.tails().to_vec())
            })
            .collect();
        (outcomes, state)
    })
}

#[test]
fn outcomes_are_bit_identical_with_telemetry_on_or_off() {
    let (fleet, universe) = session_fleet(7, 2_500, 72, 0xDECAF);
    let ticks = command_ticks(&fleet);
    let config = EngineConfig {
        universe,
        backend: Backend::Auto,
        shards: 6,
        path_policy: PathPolicy::Fixed(48),
        ..EngineConfig::default()
    };
    let baseline = run_outcomes(1, &ticks, &config, false);
    for threads in [1, parallel_threads().max(4)] {
        for telemetry in [false, true] {
            let (outcomes, state) = run_outcomes(threads, &ticks, &config, telemetry);
            // Outcome `==` is structural (timing/scheduling fields
            // excluded), so whole-outcome equality is exactly the claim.
            assert_eq!(
                outcomes, baseline.0,
                "outcomes diverged at threads={threads} telemetry={telemetry}"
            );
            assert_eq!(
                state, baseline.1,
                "final state diverged at threads={threads} telemetry={telemetry}"
            );
        }
    }
}

#[test]
fn trace_sink_emits_one_event_per_tick() {
    let sink = MemorySink::default();
    let mut engine = Engine::with_universe(1 << 10);
    engine.set_trace_sink(Some(TraceSink::new(sink.clone())));
    engine.create_session_kind("s", SessionKind::Unweighted);
    engine.execute(&Tick::new().append("s", vec![2u64, 7, 1]));
    engine.execute(&Tick::new().append("s", vec![8u64]).query("s", Query::TopK(1)));
    engine.execute_read(&ReadTick::new().query("s", Query::RankOf(0)));
    let lines = sink.lines();
    assert_eq!(lines.len(), 3, "one event per executed tick: {lines:?}");
    assert!(lines[0].contains("\"event\": \"tick\""));
    assert!(lines[0].contains("\"ingested\": 3"));
    assert!(lines[1].contains("\"queries\": 1"));
    assert!(lines[2].contains("\"event\": \"read_tick\""));
    // Clearing the sink stops emission.
    engine.set_trace_sink(None);
    engine.execute(&Tick::new().append("s", vec![9u64]));
    assert_eq!(sink.lines().len(), 3);
}

#[test]
fn histogram_merge_is_associative_and_percentiles_bound() {
    let parts: [Vec<u64>; 3] = [(1..=400).collect(), (401..=900).collect(), (901..=1000).collect()];
    let snaps: Vec<_> = parts
        .iter()
        .map(|values| {
            let h = AtomicHistogram::default();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        })
        .collect();
    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    let mut left = snaps[0].clone();
    left.merge(&snaps[1]);
    left.merge(&snaps[2]);
    let mut bc = snaps[1].clone();
    bc.merge(&snaps[2]);
    let mut right = snaps[0].clone();
    right.merge(&bc);
    assert_eq!(left, right, "histogram merge must be associative");
    assert_eq!(left.count(), 1000);
    assert_eq!(left.max, 1000);
    // Percentile bounds on the known uniform input: the reported value is
    // an inclusive bucket upper bound, so it is >= the exact percentile
    // and within the histogram's 1/16 relative-error envelope.
    for (q, exact) in [(50.0, 500u64), (90.0, 900), (99.0, 990)] {
        let got = left.percentile(q);
        assert!(got >= exact, "p{q}: {got} < exact {exact}");
        assert!(
            (got - exact) as f64 <= exact as f64 / 16.0,
            "p{q}: {got} overshoots exact {exact} beyond the bucket width"
        );
    }
    assert_eq!(left.percentile(100.0), 1000, "p100 is the exact max");
}
