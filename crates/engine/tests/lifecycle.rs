//! Engine session lifecycle under churn: sessions removed mid-stream and
//! re-created — by explicit [`plis_engine::Op::RemoveSession`] /
//! [`plis_engine::Op::CreateSession`] slots riding the same ticks as the
//! traffic, or implicitly by later auto-create ticks — must behave
//! exactly like fresh sessions fed only the post-removal traffic, and must
//! never disturb their neighbours.

use plis_engine::{
    Backend, DominantMaxKind, Engine, EngineConfig, Op, PathPolicy, SessionKind, StreamingLis,
    Tick, WeightedStreamingLis,
};
use plis_workloads::streaming::{stream, weighted_stream, StreamPattern};

fn config(universe: u64) -> EngineConfig {
    EngineConfig {
        universe,
        shards: 3,
        path_policy: PathPolicy::Fixed(32),
        ..EngineConfig::default()
    }
}

#[test]
fn removed_session_recreated_by_ingest_restarts_from_scratch() {
    let universe = 1u64 << 12;
    let pattern = StreamPattern::Line { t: 1, noise: 500 };
    let batches = stream(pattern, 3_000, 90, 0xC0FFEE);
    let cut = batches.len() / 2;

    let mut engine = Engine::new(config(universe));
    // A neighbour that lives through the churn and must be unaffected.
    let neighbour = stream(StreamPattern::Permutation, 3_000, 90, 0xD0D0);
    let mut neighbour_reference = StreamingLis::new(universe, Backend::Auto).with_par_threshold(32);

    for (round, batch) in batches.iter().enumerate() {
        let mut tick = Tick::new().auto_create();
        if round == cut {
            // Mid-stream churn: the removal rides the same tick as the
            // traffic, ordered before the batch that re-creates the id.
            tick.push("churny", Op::RemoveSession);
        }
        tick.push("churny", Op::Append(batch.clone()));
        if let Some(nb) = neighbour.get(round) {
            neighbour_reference.ingest(nb);
            tick.push("stable", Op::Append(nb.clone()));
        }
        let outcome = engine.execute(&tick);
        assert!(outcome.fully_applied(), "errors: {:?}", outcome.errors().collect::<Vec<_>>());
        if round == cut {
            assert_eq!(outcome.sessions_removed, 1);
        }
    }

    // The re-created session must equal a fresh session fed only the
    // post-removal batches — no state leaks across the removal.
    let mut fresh = StreamingLis::new(universe, Backend::Auto).with_par_threshold(32);
    for batch in &batches[cut..] {
        fresh.ingest(batch);
    }
    let live = engine.session("churny").expect("recreated by ingest");
    assert_eq!(live.len(), fresh.len());
    assert_eq!(live.ranks(), fresh.ranks());
    assert_eq!(live.tails(), fresh.tails());

    // The neighbour saw every batch exactly once.
    let stable = engine.session("stable").expect("neighbour survived");
    assert_eq!(stable.ranks(), neighbour_reference.ranks());
    assert_eq!(stable.tails(), neighbour_reference.tails());
    engine.check_invariants();
}

#[test]
fn removed_weighted_session_recreated_mid_stream_matches_fresh_session() {
    let universe = 1u64 << 12;
    let batches = weighted_stream(StreamPattern::Permutation, 2_000, 80, 30, 0xFACADE);
    let cut = batches.len() / 3;

    let mut engine = Engine::new(EngineConfig {
        dommax: DominantMaxKind::RangeTree,
        default_kind: SessionKind::Weighted,
        ..config(universe)
    });
    engine.create_session_kind("w", SessionKind::Weighted);
    for (round, batch) in batches.iter().enumerate() {
        // Strict ticks with an explicit remove/create pair at the churn
        // point: lifecycle is part of the command vocabulary, not a side
        // effect of ingest.
        let tick = if round == cut {
            Tick::new()
                .remove("w")
                .create("w", SessionKind::Weighted)
                .append_weighted("w", batch.clone())
        } else {
            Tick::new().append_weighted("w", batch.clone())
        };
        assert!(engine.execute(&tick).fully_applied());
    }

    let mut fresh =
        WeightedStreamingLis::new(universe, DominantMaxKind::RangeTree).with_par_threshold(32);
    for batch in &batches[cut..] {
        fresh.ingest(batch);
    }
    let live = engine.weighted_session("w").expect("recreated weighted");
    assert_eq!(live.scores(), fresh.scores());
    assert_eq!(live.frontier(), fresh.frontier());
    engine.check_invariants();
}

#[test]
fn kind_can_change_across_a_removal() {
    let mut engine = Engine::new(config(1 << 10));
    engine.execute(&Tick::new().append("s", vec![1, 2, 3]).auto_create());
    assert_eq!(engine.session_kind("s"), Some(SessionKind::Unweighted));

    // One tick: remove, then re-create the id as a weighted session.
    let outcome = engine.execute(
        &Tick::new()
            .remove("s")
            .create("s", SessionKind::Weighted)
            .append_weighted("s", vec![(4, 9), (5, 2)]),
    );
    assert!(outcome.fully_applied());
    assert_eq!(engine.session_kind("s"), Some(SessionKind::Weighted));
    assert_eq!(engine.best_score("s"), Some(11));
    assert_eq!(engine.lis_length("s"), None);
    engine.check_invariants();
}

#[test]
fn repeated_create_remove_cycles_stay_consistent() {
    let mut engine = Engine::new(config(1 << 10));
    for cycle in 0..10u64 {
        let id = format!("cycle-{}", cycle % 3);
        engine.execute(
            &Tick::new().append(id.as_str(), vec![cycle % 7, cycle % 5 + 3]).auto_create(),
        );
        if cycle % 2 == 1 {
            assert!(engine.remove_session(&id));
            assert!(!engine.remove_session(&id), "double removal must be a no-op");
        }
        engine.check_invariants();
    }
    let ids = engine.session_ids();
    assert_eq!(ids.len(), engine.session_count());
    for id in &ids {
        assert!(engine.session_state(id.as_str()).is_some());
    }
}
