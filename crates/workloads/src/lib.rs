//! Input generators used by the paper's evaluation (Section 6, "Input
//! Generator") and a few extra adversarial patterns for the test suite.
//!
//! The paper evaluates on two generators:
//!
//! * the **range pattern**: `n` integers drawn uniformly from `[1, k']`,
//!   whose LIS length is (for `n ≫ k'²`) essentially `k'` — used for small
//!   target ranks;
//! * the **line pattern**: `A_i = t·i + s_i` with `s_i` uniform noise —
//!   an increasing trend plus noise, whose LIS length interpolates between
//!   `Θ(√n)` (noise dominates, random-permutation behaviour) and `n`
//!   (trend dominates) as the noise amplitude shrinks — used for large
//!   target ranks.
//!
//! [`with_target_rank`] picks between the two to hit a requested LIS length,
//! which is how the figure-reproducing benchmark harness sweeps `k`.
//! All generators are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a seed (one place to change the algorithm).
fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The **range pattern**: `n` values drawn uniformly from `[1, k_prime]`.
/// For `n` much larger than `k_prime²` the LIS length is `k_prime` w.h.p.
pub fn range_pattern(n: usize, k_prime: u64, seed: u64) -> Vec<u64> {
    assert!(k_prime >= 1, "the range pattern needs a non-empty value range");
    let mut rng = rng_for(seed);
    (0..n).map(|_| rng.gen_range(1..=k_prime)).collect()
}

/// The **line pattern**: `A_i = t·i + s_i` where `s_i` is uniform in
/// `[0, noise)`.  Larger `noise` (relative to `t`) gives shorter LIS.
pub fn line_pattern(n: usize, t: u64, noise: u64, seed: u64) -> Vec<u64> {
    let noise = noise.max(1);
    let mut rng = rng_for(seed);
    (0..n).map(|i| t * i as u64 + rng.gen_range(0..noise)).collect()
}

/// A uniformly random permutation of `0..n` (expected LIS length `≈ 2√n`,
/// the classic Ulam problem; the paper cites Johansson \[48\] for this).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = rng_for(seed);
    let mut v: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// Generate an input of size `n` whose LIS length is close to `target_k`,
/// choosing between the range pattern (small targets) and the line pattern
/// (large targets) exactly as the paper's evaluation does.
///
/// The returned LIS length is approximate (the generators are random); the
/// benchmark harness reports the measured value next to the target.
pub fn with_target_rank(n: usize, target_k: u64, seed: u64) -> Vec<u64> {
    assert!(n > 0, "empty inputs have no rank");
    let target_k = target_k.clamp(1, n as u64);
    let sqrt_n = (n as f64).sqrt();
    if (target_k as f64) <= 1.5 * sqrt_n {
        // Small ranks: uniform values over a range of size target_k.
        range_pattern(n, target_k, seed)
    } else if target_k >= n as u64 {
        // Saturation: the only way to reach k = n is a strictly increasing
        // sequence (noise below the trend step).
        line_pattern(n, 1, 1, seed)
    } else {
        // Large ranks: increasing trend (t = 1) plus noise chosen so that
        // the LIS of the noise-dominated windows sums to ≈ target_k:
        // a window of `s` positions behaves like a random permutation with
        // LIS ≈ 2√s, so k ≈ (n / s)·2√s = 2n/√s  ⇒  s ≈ (2n / k)².
        let s = ((2.0 * n as f64 / target_k as f64).powi(2)).max(1.0) as u64;
        line_pattern(n, 1, s, seed)
    }
}

/// Uniform random weights in `[1, max_weight]` for the weighted LIS
/// experiments ("we always use random weights from a uniform distribution").
pub fn uniform_weights(n: usize, max_weight: u64, seed: u64) -> Vec<u64> {
    assert!(max_weight >= 1);
    let mut rng = rng_for(seed);
    (0..n).map(|_| rng.gen_range(1..=max_weight)).collect()
}

/// Streaming arrivals: the offline generators above, chopped into the
/// batched-arrival shape consumed by `plis-engine`.
///
/// A *stream* is a `Vec` of batches; a *fleet* is many named streams, which
/// is what the engine's tick API and the streaming benchmark consume.
pub mod streaming {
    use super::{line_pattern, random_permutation, range_pattern, rng_for, uniform_weights};
    use rand::Rng;

    /// Which offline generator feeds a stream.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum StreamPattern {
        /// `range_pattern`: uniform values in `[1, k_prime]`.
        Range { k_prime: u64 },
        /// `line_pattern`: increasing trend `t` plus uniform noise.
        Line { t: u64, noise: u64 },
        /// `random_permutation` of `0..n`.
        Permutation,
    }

    impl StreamPattern {
        /// Materialize the underlying offline sequence.
        pub fn generate(self, n: usize, seed: u64) -> Vec<u64> {
            match self {
                StreamPattern::Range { k_prime } => range_pattern(n, k_prime, seed),
                StreamPattern::Line { t, noise } => line_pattern(n, t, noise, seed),
                StreamPattern::Permutation => random_permutation(n, seed),
            }
        }

        /// Smallest universe size that accommodates every generated value.
        pub fn universe(self, n: usize) -> u64 {
            match self {
                StreamPattern::Range { k_prime } => k_prime + 1,
                StreamPattern::Line { t, noise } => t * n as u64 + noise.max(1),
                StreamPattern::Permutation => n as u64,
            }
        }

        /// Short name for benchmark output.
        pub fn name(self) -> &'static str {
            match self {
                StreamPattern::Range { .. } => "range",
                StreamPattern::Line { .. } => "line",
                StreamPattern::Permutation => "permutation",
            }
        }
    }

    /// Chop `values` into arrival batches whose sizes are uniform in
    /// `[max(1, mean/2), mean·3/2]` — deterministic in the seed.  Generic
    /// over the element type so plain (`u64`) and weighted
    /// (`(value, weight)`) streams batch identically for the same seed.
    pub fn into_batches<T: Clone>(values: &[T], mean_batch: usize, seed: u64) -> Vec<Vec<T>> {
        assert!(mean_batch >= 1, "batches must be non-empty");
        let lo = (mean_batch / 2).max(1);
        let hi = (mean_batch + mean_batch / 2).max(lo);
        let mut rng = rng_for(seed ^ 0x5EED_BA7C);
        let mut batches = Vec::new();
        let mut rest = values;
        while !rest.is_empty() {
            let take = rng.gen_range(lo..=hi).min(rest.len());
            let (head, tail) = rest.split_at(take);
            batches.push(head.to_vec());
            rest = tail;
        }
        batches
    }

    /// A batched stream of `n` elements following `pattern`.
    pub fn stream(pattern: StreamPattern, n: usize, mean_batch: usize, seed: u64) -> Vec<Vec<u64>> {
        into_batches(&pattern.generate(n, seed), mean_batch, seed)
    }

    /// Round-robin a fleet's per-session batch queues into engine-shaped
    /// ticks: tick `r` holds session `s`'s `r`-th batch for every session
    /// that still has one.  `make_id` adapts the session name to the
    /// caller's id type (e.g. `plis_engine::SessionId::from`), so the
    /// benchmark harness and the oracle/determinism test suites replay the
    /// exact same tick shape.  Generic over the batch type `B`: plain
    /// batches (`Vec<u64>`), weighted batches, and the read/write ops of
    /// [`read_write_mix`] all schedule identically.
    pub fn round_robin_ticks<B: Clone, Id>(
        fleet: &[(String, Vec<B>)],
        make_id: impl Fn(&str) -> Id,
    ) -> Vec<Vec<(Id, B)>> {
        let rounds = fleet.iter().map(|(_, batches)| batches.len()).max().unwrap_or(0);
        (0..rounds)
            .map(|round| {
                fleet
                    .iter()
                    .filter_map(|(name, batches)| {
                        batches.get(round).map(|b| (make_id(name.as_str()), b.clone()))
                    })
                    .collect()
            })
            .collect()
    }

    /// One named stream of a fleet: `(session_name, batches)`.
    pub type SessionStream = (String, Vec<Vec<u64>>);

    /// A fleet of `sessions` named streams cycling through the three
    /// patterns, each `n_per_session` elements in batches of ~`mean_batch`.
    /// Returns the [`SessionStream`]s plus a universe bound that covers
    /// every stream.
    ///
    /// The streams are generated in parallel (one seed per session), so the
    /// fleet is identical for any thread count and generation keeps up with
    /// the parallel ingest side on large sweeps.
    pub fn session_fleet(
        sessions: usize,
        n_per_session: usize,
        mean_batch: usize,
        seed: u64,
    ) -> (Vec<SessionStream>, u64) {
        let patterns = [
            StreamPattern::Range { k_prime: (n_per_session as f64).sqrt().max(2.0) as u64 },
            StreamPattern::Line { t: 1, noise: (n_per_session as u64 / 8).max(1) },
            StreamPattern::Permutation,
        ];
        let universe = patterns[..patterns.len().min(sessions)]
            .iter()
            .map(|p| p.universe(n_per_session))
            .fold(1u64, u64::max);
        // Whole sessions are coarse work items: grain 1.
        let fleet = plis_primitives::par_map_collect_with_grain(sessions, 1, |i| {
            let pattern = patterns[i % patterns.len()];
            let name = format!("{}-{i}", pattern.name());
            (name, stream(pattern, n_per_session, mean_batch, seed + i as u64))
        });
        (fleet, universe)
    }

    /// A batched *weighted* stream: the offline value pattern zipped with
    /// uniform random weights in `[1, max_weight]` (the paper's weighted
    /// evaluation always uses uniform weights), chopped into the same
    /// arrival batches `stream` would produce for the seed.
    pub fn weighted_stream(
        pattern: StreamPattern,
        n: usize,
        mean_batch: usize,
        max_weight: u64,
        seed: u64,
    ) -> Vec<Vec<(u64, u64)>> {
        let values = pattern.generate(n, seed);
        let weights = uniform_weights(n, max_weight, seed ^ 0x77E1_64E7);
        let pairs: Vec<(u64, u64)> = values.into_iter().zip(weights).collect();
        into_batches(&pairs, mean_batch, seed)
    }

    /// One named weighted stream of a fleet: `(session_name, batches)` of
    /// `(value, weight)` pairs.
    pub type WeightedSessionStream = (String, Vec<Vec<(u64, u64)>>);

    /// A fleet of `sessions` named weighted streams cycling through the
    /// three patterns — the weighted analogue of [`session_fleet`], feeding
    /// the engine's weighted session kind.  Returns the streams plus a
    /// universe bound that covers every stream.
    pub fn weighted_session_fleet(
        sessions: usize,
        n_per_session: usize,
        mean_batch: usize,
        max_weight: u64,
        seed: u64,
    ) -> (Vec<WeightedSessionStream>, u64) {
        let patterns = [
            StreamPattern::Range { k_prime: (n_per_session as f64).sqrt().max(2.0) as u64 },
            StreamPattern::Line { t: 1, noise: (n_per_session as u64 / 8).max(1) },
            StreamPattern::Permutation,
        ];
        let universe = patterns[..patterns.len().min(sessions)]
            .iter()
            .map(|p| p.universe(n_per_session))
            .fold(1u64, u64::max);
        let fleet = plis_primitives::par_map_collect_with_grain(sessions, 1, |i| {
            let pattern = patterns[i % patterns.len()];
            let name = format!("w-{}-{i}", pattern.name());
            (name, weighted_stream(pattern, n_per_session, mean_batch, max_weight, seed + i as u64))
        });
        (fleet, universe)
    }

    /// Shape of one read in a generated read/write schedule.  The
    /// generator is engine-agnostic: these specs describe *what to ask*,
    /// and the bench/test layers map them onto `plis_engine::Query`
    /// values (the dp value of a spec is a rank for plain sessions and an
    /// Algorithm-2 score for weighted ones).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum QuerySpec {
        /// The dp value of this element index.  Generated indices always
        /// point at elements already written by earlier ops of the same
        /// schedule, so answers are never trivially out of bounds.
        RankOf(usize),
        /// How many elements have dp value exactly this.
        CountAt(u64),
        /// The `k` best elements by dp value.
        TopK(usize),
        /// One full certificate reconstruction.
        Certificate,
    }

    /// One op of a read/write-mixed session schedule.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum ReadWriteOp<T> {
        /// Ingest one batch.
        Write(Vec<T>),
        /// Serve a batch of queries against everything written so far.
        Read(Vec<QuerySpec>),
    }

    impl<T> ReadWriteOp<T> {
        /// Elements written by this op (0 for reads).
        pub fn written(&self) -> usize {
            match self {
                ReadWriteOp::Write(b) => b.len(),
                ReadWriteOp::Read(_) => 0,
            }
        }

        /// Queries issued by this op (0 for writes).
        pub fn queries(&self) -> usize {
            match self {
                ReadWriteOp::Write(_) => 0,
                ReadWriteOp::Read(q) => q.len(),
            }
        }
    }

    /// Interleave read ops into a stream of write batches so that reads
    /// make up a `query_mix` fraction of all ops (`0.0` = write-only;
    /// values are clamped to `[0, 0.9]` so writes always make progress).
    /// Each read op carries `queries_per_read` specs cycling through the
    /// four query shapes, with element indices drawn uniformly from the
    /// prefix written so far — deterministic in the seed, like every other
    /// generator in this crate.
    pub fn read_write_mix<T: Clone>(
        batches: &[Vec<T>],
        query_mix: f64,
        queries_per_read: usize,
        seed: u64,
    ) -> Vec<ReadWriteOp<T>> {
        let mix = query_mix.clamp(0.0, 0.9);
        // reads per write so that reads/(reads + writes) = mix.
        let reads_per_write = mix / (1.0 - mix);
        let mut rng = rng_for(seed ^ 0x0E4D_3A1C);
        let mut ops = Vec::with_capacity(batches.len());
        let mut written = 0usize;
        let mut credit = 0.0f64;
        for batch in batches {
            written += batch.len();
            ops.push(ReadWriteOp::Write(batch.clone()));
            credit += reads_per_write;
            while credit >= 1.0 {
                credit -= 1.0;
                let specs = (0..queries_per_read.max(1))
                    .map(|_| match rng.gen_range(0..4u32) {
                        0 => QuerySpec::RankOf(rng.gen_range(0..written.max(1) as u64) as usize),
                        1 => QuerySpec::CountAt(1 + rng.gen_range(0..64u64)),
                        2 => QuerySpec::TopK(1 + rng.gen_range(0..8u64) as usize),
                        _ => QuerySpec::Certificate,
                    })
                    .collect();
                ops.push(ReadWriteOp::Read(specs));
            }
        }
        ops
    }

    /// One named read/write schedule of a fleet: `(session_name, ops)`.
    pub type MixedSessionStream = (String, Vec<ReadWriteOp<u64>>);

    /// A fleet of read/write-mixed schedules: [`session_fleet`]'s streams
    /// with reads interleaved per [`read_write_mix`] — the traffic shape
    /// of the engine's mixed ingest+query tick path and the query-sweep
    /// benchmark.  Returns the schedules plus a universe bound that covers
    /// every stream.
    pub fn mixed_session_fleet(
        sessions: usize,
        n_per_session: usize,
        mean_batch: usize,
        query_mix: f64,
        queries_per_read: usize,
        seed: u64,
    ) -> (Vec<MixedSessionStream>, u64) {
        let (fleet, universe) = session_fleet(sessions, n_per_session, mean_batch, seed);
        let mixed = plis_primitives::par_map_collect_with_grain(fleet.len(), 1, |i| {
            let (name, batches) = &fleet[i];
            let ops = read_write_mix(batches, query_mix, queries_per_read, seed + i as u64);
            (name.clone(), ops)
        });
        (mixed, universe)
    }
}

/// Adversarial / degenerate patterns used by the test suite.
pub mod adversarial {
    /// Strictly increasing sequence (LIS length `n`).
    pub fn increasing(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    /// Strictly decreasing sequence (LIS length 1).
    pub fn decreasing(n: usize) -> Vec<u64> {
        (0..n as u64).rev().collect()
    }

    /// Constant sequence (LIS length 1 for strict increase).
    pub fn constant(n: usize, value: u64) -> Vec<u64> {
        vec![value; n]
    }

    /// `blocks` descending blocks with increasing block offsets: the LIS
    /// picks one element per block, so its length is exactly `blocks`
    /// (assuming `n >= blocks`).
    pub fn sawtooth(n: usize, blocks: usize) -> Vec<u64> {
        assert!(blocks >= 1 && blocks <= n);
        let block_len = n.div_ceil(blocks);
        (0..n)
            .map(|i| {
                let b = i / block_len;
                let within = i % block_len;
                (b as u64) * (block_len as u64) + (block_len as u64 - 1 - within as u64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential O(n log k) LIS length, local to the tests to keep this
    /// crate leaf-level.
    fn lis_len(values: &[u64]) -> u64 {
        let mut tails: Vec<u64> = Vec::new();
        for &v in values {
            let pos = tails.partition_point(|&t| t < v);
            if pos == tails.len() {
                tails.push(v);
            } else if v < tails[pos] {
                tails[pos] = v;
            }
        }
        tails.len() as u64
    }

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        assert_eq!(range_pattern(1000, 50, 7), range_pattern(1000, 50, 7));
        assert_ne!(range_pattern(1000, 50, 7), range_pattern(1000, 50, 8));
        assert_eq!(line_pattern(1000, 1, 100, 3), line_pattern(1000, 1, 100, 3));
        assert_eq!(random_permutation(1000, 1), random_permutation(1000, 1));
        assert_eq!(uniform_weights(1000, 10, 5), uniform_weights(1000, 10, 5));
    }

    #[test]
    fn range_pattern_respects_bounds_and_rank() {
        let v = range_pattern(20_000, 16, 42);
        assert!(v.iter().all(|&x| (1..=16).contains(&x)));
        assert_eq!(lis_len(&v), 16);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let n = 5000;
        let mut v = random_permutation(n, 9);
        v.sort_unstable();
        assert_eq!(v, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_lis_is_about_two_sqrt_n() {
        let n = 40_000usize;
        let k = lis_len(&random_permutation(n, 11)) as f64;
        let expect = 2.0 * (n as f64).sqrt();
        assert!(k > 0.7 * expect && k < 1.3 * expect, "k = {k}, expected ≈ {expect}");
    }

    #[test]
    fn with_target_rank_small_targets_land_close() {
        let n = 50_000usize;
        for &target in &[1u64, 4, 16, 64, 200] {
            let k = lis_len(&with_target_rank(n, target, 123));
            assert!(
                k as f64 >= target as f64 * 0.5 && k as f64 <= target as f64 * 1.5 + 2.0,
                "target {target}, measured {k}"
            );
        }
    }

    #[test]
    fn with_target_rank_large_targets_scale_up() {
        let n = 50_000usize;
        let small = lis_len(&with_target_rank(n, 500, 5));
        let large = lis_len(&with_target_rank(n, 20_000, 5));
        assert!(
            large > 4 * small,
            "large-target rank {large} should dwarf small-target rank {small}"
        );
        assert!(large as usize <= n);
        // Saturation at the sequence length.
        assert_eq!(lis_len(&with_target_rank(1000, 1_000_000, 5)), 1000);
    }

    #[test]
    fn weights_are_in_range() {
        let w = uniform_weights(10_000, 7, 3);
        assert!(w.iter().all(|&x| (1..=7).contains(&x)));
    }

    #[test]
    fn streaming_batches_concatenate_to_the_offline_sequence() {
        let pattern = streaming::StreamPattern::Line { t: 1, noise: 500 };
        let offline = pattern.generate(10_000, 9);
        let batches = streaming::into_batches(&offline, 128, 9);
        let glued: Vec<u64> = batches.iter().flatten().copied().collect();
        assert_eq!(glued, offline);
        assert!(batches.iter().all(|b| !b.is_empty() && b.len() <= 192));
        // Deterministic in the seed.
        assert_eq!(batches, streaming::into_batches(&offline, 128, 9));
    }

    #[test]
    fn streaming_fleet_covers_universe_and_patterns() {
        let (fleet, universe) = streaming::session_fleet(6, 1_000, 64, 3);
        assert_eq!(fleet.len(), 6);
        for (name, batches) in &fleet {
            let total: usize = batches.iter().map(Vec::len).sum();
            assert_eq!(total, 1_000, "stream {name}");
            assert!(
                batches.iter().flatten().all(|&v| v < universe),
                "stream {name} exceeds universe {universe}"
            );
        }
        // All three patterns appear in the naming.
        for prefix in ["range-", "line-", "permutation-"] {
            assert!(fleet.iter().any(|(n, _)| n.starts_with(prefix)), "{prefix} missing");
        }
    }

    #[test]
    fn weighted_streams_batch_like_plain_streams() {
        let pattern = streaming::StreamPattern::Range { k_prime: 32 };
        let plain = streaming::stream(pattern, 5_000, 96, 11);
        let weighted = streaming::weighted_stream(pattern, 5_000, 96, 50, 11);
        // Same batching and the same value sequence, weights in range.
        let plain_sizes: Vec<usize> = plain.iter().map(Vec::len).collect();
        let weighted_sizes: Vec<usize> = weighted.iter().map(Vec::len).collect();
        assert_eq!(plain_sizes, weighted_sizes);
        let plain_values: Vec<u64> = plain.into_iter().flatten().collect();
        let weighted_values: Vec<u64> = weighted.iter().flatten().map(|&(v, _)| v).collect();
        assert_eq!(plain_values, weighted_values);
        assert!(weighted.iter().flatten().all(|&(_, w)| (1..=50).contains(&w)));
        // Deterministic in the seed.
        assert_eq!(weighted, streaming::weighted_stream(pattern, 5_000, 96, 50, 11));
    }

    #[test]
    fn weighted_fleet_covers_universe_and_patterns() {
        let (fleet, universe) = streaming::weighted_session_fleet(6, 800, 64, 100, 5);
        assert_eq!(fleet.len(), 6);
        for (name, batches) in &fleet {
            let total: usize = batches.iter().map(Vec::len).sum();
            assert_eq!(total, 800, "stream {name}");
            assert!(
                batches.iter().flatten().all(|&(v, w)| v < universe && (1..=100).contains(&w)),
                "stream {name} breaks universe {universe} or weight bounds"
            );
        }
        for prefix in ["w-range-", "w-line-", "w-permutation-"] {
            assert!(fleet.iter().any(|(n, _)| n.starts_with(prefix)), "{prefix} missing");
        }
    }

    #[test]
    fn read_write_mix_hits_the_requested_ratio() {
        let pattern = streaming::StreamPattern::Range { k_prime: 50 };
        let batches = streaming::stream(pattern, 20_000, 64, 13);
        for &mix in &[0.0, 0.2, 0.5] {
            let ops = streaming::read_write_mix(&batches, mix, 4, 13);
            // Writes are preserved verbatim, in order.
            let writes: Vec<&Vec<u64>> = ops
                .iter()
                .filter_map(|op| match op {
                    streaming::ReadWriteOp::Write(b) => Some(b),
                    streaming::ReadWriteOp::Read(_) => None,
                })
                .collect();
            assert_eq!(writes.len(), batches.len());
            assert!(writes.iter().zip(&batches).all(|(a, b)| **a == *b));
            // Read fraction lands near the request.
            let reads = ops.len() - writes.len();
            let measured = reads as f64 / ops.len() as f64;
            assert!((measured - mix).abs() < 0.05, "mix {mix}: measured read fraction {measured}");
            // Deterministic in the seed.
            assert_eq!(ops, streaming::read_write_mix(&batches, mix, 4, 13));
        }
    }

    #[test]
    fn read_write_mix_queries_stay_inside_the_written_prefix() {
        let pattern = streaming::StreamPattern::Permutation;
        let batches = streaming::stream(pattern, 5_000, 128, 21);
        let ops = streaming::read_write_mix(&batches, 0.4, 6, 21);
        let mut written = 0usize;
        let mut kinds = [false; 4];
        for op in &ops {
            match op {
                streaming::ReadWriteOp::Write(b) => written += b.len(),
                streaming::ReadWriteOp::Read(specs) => {
                    assert_eq!(specs.len(), 6);
                    assert_eq!(op.queries(), 6);
                    assert_eq!(op.written(), 0);
                    for spec in specs {
                        match *spec {
                            streaming::QuerySpec::RankOf(i) => {
                                assert!(i < written, "index {i} beyond written {written}");
                                kinds[0] = true;
                            }
                            streaming::QuerySpec::CountAt(v) => {
                                assert!(v >= 1);
                                kinds[1] = true;
                            }
                            streaming::QuerySpec::TopK(k) => {
                                assert!(k >= 1);
                                kinds[2] = true;
                            }
                            streaming::QuerySpec::Certificate => kinds[3] = true,
                        }
                    }
                }
            }
        }
        assert!(kinds.iter().all(|&k| k), "all four query shapes appear: {kinds:?}");
    }

    #[test]
    fn mixed_fleet_schedules_round_robin_like_plain_fleets() {
        let (fleet, universe) = streaming::mixed_session_fleet(4, 2_000, 64, 0.3, 3, 17);
        assert_eq!(fleet.len(), 4);
        for (name, ops) in &fleet {
            let total: usize = ops.iter().map(streaming::ReadWriteOp::written).sum();
            assert_eq!(total, 2_000, "stream {name}");
            assert!(ops.iter().any(|op| matches!(op, streaming::ReadWriteOp::Read(_))));
        }
        // The generic round-robin scheduler accepts ops as a batch type.
        let ticks = streaming::round_robin_ticks(&fleet, |s| s.to_string());
        let scheduled: usize =
            ticks.iter().flat_map(|t| t.iter().map(|(_, op)| op.written())).sum();
        assert_eq!(scheduled, 4 * 2_000);
        assert!(universe >= 2_000);
    }

    #[test]
    fn adversarial_patterns_have_exact_ranks() {
        assert_eq!(lis_len(&adversarial::increasing(100)), 100);
        assert_eq!(lis_len(&adversarial::decreasing(100)), 1);
        assert_eq!(lis_len(&adversarial::constant(100, 3)), 1);
        assert_eq!(lis_len(&adversarial::sawtooth(1000, 10)), 10);
        assert_eq!(lis_len(&adversarial::sawtooth(997, 13)), 13);
    }
}
