//! The Range-vEB tree (Section 4.2, Algorithm 3, Appendix E).
//!
//! Like the range tree of `plis-rangetree`, this structure answers 2D
//! dominant-max queries over a static point set, but the inner structures
//! are **Mono-vEB trees**: vEB trees over the points' `y` coordinates that
//! only retain the *staircase* of the scores seen so far.  Because the
//! staircase is monotone, the per-node part of a dominant-max query is a
//! single vEB predecessor lookup (`O(log log n)`), and updates use the
//! parallel batch insertion / deletion and `CoveredBy` operations of the
//! parallel vEB tree (Theorems 5.1, 5.2, D.1).
//!
//! Space efficiency follows Appendix E: the outer tree is a static,
//! perfectly balanced segment tree over the x-sorted order, and each inner
//! Mono-vEB tree is built over a universe equal to the number of points in
//! its outer node, addressed by *relabelled* keys (the rank of the point's
//! `y` among the node's points).  The relabelling tables are the nodes'
//! sorted `y` arrays; translating a query or update point costs one binary
//! search per touched node, which adds an `O(log n)` factor to the query
//! constant but keeps the structure `O(n log n)` space overall.
//!
//! The paper proposes this structure to improve the *theoretical* work bound
//! of WLIS from `O(n log² n)` to `O(n log n log log n)`; the benchmark
//! harness compares both structures head-to-head (experiment E9 in
//! `DESIGN.md`).

use plis_primitives::par::{maybe_join, GRAIN};
use plis_primitives::{DomMaxCounters, DomMaxStats};
use plis_veb::{MonoVeb, ScoredPoint};

/// A 2D point (same convention as `plis_rangetree::Point2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point2 {
    /// First coordinate (value rank for WLIS).
    pub x: u64,
    /// Second coordinate (input index for WLIS).
    pub y: u64,
}

/// A score update for a point already in the structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreUpdate {
    /// The point whose score is being set.
    pub point: Point2,
    /// The new score (scores only grow in the WLIS algorithm).
    pub score: u64,
}

/// One outer node: a contiguous range of the x-sorted order, the sorted `y`
/// values of its points (the Appendix-E relabelling table), and a Mono-vEB
/// staircase over the relabelled keys.
struct VNode {
    lo: usize,
    hi: usize,
    /// Sorted original `y` values of the points in `[lo, hi)`; position in
    /// this array is the relabelled key used in `inner`.
    ys: Vec<u64>,
    /// Staircase of (relabelled key, score).
    inner: MonoVeb,
}

/// The Range-vEB dominant-max structure (`RangeStruct` of Algorithm 3).
pub struct RangeVeb {
    n: usize,
    xs: Vec<u64>,
    ys_by_pos: Vec<u64>,
    nodes: Vec<VNode>,
    /// Telemetry totals (observational only; counted at the
    /// [`DominantMaxStore`](plis_primitives::DominantMaxStore) boundary).
    counters: DomMaxCounters,
}

impl RangeVeb {
    /// Build the structure over `points`; all scores start "absent" (a
    /// dominant-max query over untouched regions returns 0).
    ///
    /// # Panics
    /// Panics if two points are identical.
    pub fn new(points: &[Point2]) -> Self {
        let n = points.len();
        if n == 0 {
            return RangeVeb {
                n,
                xs: Vec::new(),
                ys_by_pos: Vec::new(),
                nodes: Vec::new(),
                counters: DomMaxCounters::new(),
            };
        }
        let mut order: Vec<(u64, u64)> = points.iter().map(|p| (p.x, p.y)).collect();
        plis_primitives::par_sort_unstable(&mut order);
        assert!(order.windows(2).all(|w| w[0] != w[1]), "duplicate points are not supported");
        // The `y` coordinates must be pairwise distinct: they are the keys of
        // the inner Mono-vEB trees (in WLIS they are the input indices, which
        // are unique by construction).
        {
            let mut ys: Vec<u64> = order.iter().map(|p| p.1).collect();
            plis_primitives::par_sort_unstable(&mut ys);
            assert!(ys.windows(2).all(|w| w[0] != w[1]), "y coordinates must be pairwise distinct");
        }
        let xs: Vec<u64> = order.iter().map(|p| p.0).collect();
        let ys_by_pos: Vec<u64> = order.iter().map(|p| p.1).collect();
        let mut nodes: Vec<Option<VNode>> = Vec::new();
        nodes.resize_with(2 * n - 1, || None);
        build(&mut nodes, &ys_by_pos, 0, n);
        let nodes = nodes.into_iter().map(|v| v.expect("build fills every node")).collect();
        RangeVeb { n, xs, ys_by_pos, nodes, counters: DomMaxCounters::new() }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the structure holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `DominantMax(qx, qy)` (Algorithm 3): the maximum score among points
    /// with `x < qx`, `y < qy` whose score has been set; 0 if none.
    pub fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let prefix = self.xs.partition_point(|&x| x < qx);
        if prefix == 0 {
            return 0;
        }
        self.query_node(0, prefix, qy)
    }

    fn query_node(&self, node_idx: usize, prefix: usize, qy: u64) -> u64 {
        let node = &self.nodes[node_idx];
        if prefix >= node.hi - node.lo {
            // In-range inner tree: relabel qy and take the predecessor's
            // score — the staircase makes it the prefix maximum (Line 5).
            let label_bound = node.ys.partition_point(|&y| y < qy) as u64;
            return node.inner.prefix_best(label_bound).unwrap_or(0);
        }
        let left_idx = node_idx + 1;
        let left_size = self.nodes[left_idx].hi - self.nodes[left_idx].lo;
        let right_idx = node_idx + 2 * left_size;
        if prefix <= left_size {
            self.query_node(left_idx, prefix, qy)
        } else {
            let l = self.query_node(left_idx, left_size, qy);
            let r = self.query_node(right_idx, prefix - left_size, qy);
            l.max(r)
        }
    }

    /// `Update(B)` (Algorithm 3 lines 9–20): set the scores of a batch of
    /// points.  Every point is routed to the `O(log n)` outer nodes that
    /// contain it; each affected inner Mono-vEB tree then performs one
    /// staircase update (refine → `CoveredBy` → batch delete → batch
    /// insert), with different inner trees processed in parallel.
    ///
    /// # Panics
    /// Panics if an update refers to a point not present in the structure.
    pub fn update_batch(&mut self, updates: &[ScoreUpdate]) {
        if updates.is_empty() || self.n == 0 {
            return;
        }
        // Route updates by their x-sorted position so the recursion can
        // split them contiguously at every outer node.
        let mut routed: Vec<(usize, u64, u64)> =
            plis_primitives::par_map_collect(updates.len(), |i| {
                let u = &updates[i];
                let pos = self.position_of(u.point).unwrap_or_else(|| {
                    panic!("point ({}, {}) is not in the structure", u.point.x, u.point.y)
                });
                (pos, u.point.y, u.score)
            });
        plis_primitives::par_sort_unstable(&mut routed);
        let nodes = &mut self.nodes[..];
        distribute(nodes, &routed);
    }

    /// Convenience for a single update (wraps [`update_batch`](Self::update_batch)).
    pub fn update_one(&mut self, update: ScoreUpdate) {
        self.update_batch(std::slice::from_ref(&update));
    }

    fn position_of(&self, point: Point2) -> Option<usize> {
        let lo = self.xs.partition_point(|&x| x < point.x);
        let hi = self.xs.partition_point(|&x| x <= point.x);
        self.ys_by_pos[lo..hi].binary_search(&point.y).ok().map(|i| lo + i)
    }
}

/// [`RangeVeb`] as a pluggable dominant-max store (the bare-tuple interface
/// consumed by the generic WLIS drivers).  Adding another backend means
/// writing exactly this impl next to the new structure.
impl plis_primitives::DominantMaxStore for RangeVeb {
    fn build(points: &[(u64, u64)]) -> Self {
        let pts: Vec<Point2> = points.iter().map(|&(x, y)| Point2 { x, y }).collect();
        RangeVeb::new(&pts)
    }
    fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        self.counters.count_query();
        RangeVeb::dominant_max(self, qx, qy)
    }
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]) {
        self.counters.count_writeback(updates.len());
        let ups: Vec<ScoreUpdate> = updates
            .iter()
            .map(|&(x, y, score)| ScoreUpdate { point: Point2 { x, y }, score })
            .collect();
        RangeVeb::update_batch(self, &ups);
    }
    fn name() -> &'static str {
        "range-veb"
    }
    fn stats(&self) -> DomMaxStats {
        self.counters.snapshot()
    }
}

/// Build the contiguous-layout outer tree; every node gets its sorted `y`
/// table (by merging children) and an empty Mono-vEB over `[0, size)`.
fn build(nodes: &mut [Option<VNode>], ys_by_pos: &[u64], lo: usize, hi: usize) {
    let m = hi - lo;
    debug_assert_eq!(nodes.len(), 2 * m - 1);
    if m == 1 {
        nodes[0] = Some(VNode { lo, hi, ys: vec![ys_by_pos[lo]], inner: MonoVeb::new(1) });
        return;
    }
    let half = m.div_ceil(2);
    let (this, rest) = nodes.split_first_mut().expect("non-empty");
    let (left, right) = rest.split_at_mut(2 * half - 1);
    maybe_join(
        m,
        GRAIN,
        || build(left, ys_by_pos, lo, lo + half),
        || build(right, ys_by_pos, lo + half, hi),
    );
    let lys = &left[0].as_ref().expect("left built").ys;
    let rys = &right[0].as_ref().expect("right built").ys;
    let merged = plis_primitives::parallel_merge(lys, rys);
    let inner = MonoVeb::new(merged.len() as u64);
    *this = Some(VNode { lo, hi, ys: merged, inner });
}

/// Push the routed updates `(position, y, score)` (sorted by position) down
/// the outer tree: every node on a point's root-to-leaf path receives it.
/// The node's own staircase update and the two child recursions are all
/// independent, so they run under a fork-join.
fn distribute(nodes: &mut [VNode], updates: &[(usize, u64, u64)]) {
    if updates.is_empty() {
        return;
    }
    let m = nodes[0].hi - nodes[0].lo;
    if m == 1 {
        apply_to_node(&mut nodes[0], updates);
        return;
    }
    let half = m.div_ceil(2);
    let (this, rest) = nodes.split_first_mut().expect("non-empty");
    let split_pos = this.lo + half;
    let cut = updates.partition_point(|&(pos, _, _)| pos < split_pos);
    let (upd_l, upd_r) = updates.split_at(cut);
    let (left, right) = rest.split_at_mut(2 * half - 1);
    maybe_join(
        updates.len().max(2),
        2,
        || apply_to_node(this, updates),
        || {
            maybe_join(
                updates.len().max(2),
                2,
                || distribute(left, upd_l),
                || distribute(right, upd_r),
            );
        },
    );
}

/// Relabel the updates into the node's local key space and perform one
/// staircase update on its inner Mono-vEB tree.
fn apply_to_node(node: &mut VNode, updates: &[(usize, u64, u64)]) {
    let mut batch: Vec<ScoredPoint> = updates
        .iter()
        .map(|&(_, y, score)| {
            let label = node.ys.binary_search(&y).expect("point belongs to this node") as u64;
            ScoredPoint { key: label, score }
        })
        .collect();
    batch.sort_unstable_by_key(|p| p.key);
    batch.dedup_by_key(|p| p.key);
    node.inner.insert_staircase(&batch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(points: &[(Point2, Option<u64>)], qx: u64, qy: u64) -> u64 {
        points
            .iter()
            .filter(|(p, s)| p.x < qx && p.y < qy && s.is_some())
            .map(|(_, s)| s.unwrap())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn empty_structure() {
        let r = RangeVeb::new(&[]);
        assert!(r.is_empty());
        assert_eq!(r.dominant_max(5, 5), 0);
    }

    #[test]
    fn single_point_strict_dominance() {
        let p = Point2 { x: 3, y: 4 };
        let mut r = RangeVeb::new(&[p]);
        assert_eq!(r.dominant_max(10, 10), 0);
        r.update_one(ScoreUpdate { point: p, score: 6 });
        assert_eq!(r.dominant_max(4, 5), 6);
        assert_eq!(r.dominant_max(3, 5), 0);
        assert_eq!(r.dominant_max(4, 4), 0);
    }

    #[test]
    fn paper_figure_9_example() {
        // The Figure-9 point set, restricted to one point per y coordinate
        // (the Range-vEB keys its inner trees by y, which in WLIS is the
        // unique input index).
        let raw = [
            (3u64, 8u64, 4u64),
            (16, 1, 7),
            (17, 2, 2),
            (13, 4, 3),
            (14, 7, 3),
            (1, 5, 7),
            (16, 10, 12),
            (9, 3, 6),
            (5, 0, 2),
            (11, 6, 9),
        ];
        let points: Vec<Point2> = raw.iter().map(|&(x, y, _)| Point2 { x, y }).collect();
        let mut r = RangeVeb::new(&points);
        let updates: Vec<ScoreUpdate> =
            raw.iter().map(|&(x, y, s)| ScoreUpdate { point: Point2 { x, y }, score: s }).collect();
        r.update_batch(&updates);
        assert_eq!(r.dominant_max(10, 6), 7);
        let scored: Vec<(Point2, Option<u64>)> =
            raw.iter().map(|&(x, y, s)| (Point2 { x, y }, Some(s))).collect();
        for qx in 0..20 {
            for qy in 0..12 {
                assert_eq!(r.dominant_max(qx, qy), brute(&scored, qx, qy), "query ({qx},{qy})");
            }
        }
    }

    #[test]
    fn incremental_rounds_match_brute_force() {
        let mut state = 0xA24BAED4963EE407u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 400usize;
        // Distinct y coordinates (as in WLIS, where y is the input index).
        let mut ys: Vec<u64> = (0..n as u64).collect();
        for i in (1..n).rev() {
            ys.swap(i, (rng() as usize) % (i + 1));
        }
        let points: Vec<Point2> = (0..n).map(|i| Point2 { x: rng() % 150, y: ys[i] }).collect();
        let points: Vec<Point2> = {
            // Make (x, y) pairs unique by construction (y already unique).
            points
        };
        let mut tree = RangeVeb::new(&points);
        let mut scored: Vec<(Point2, Option<u64>)> = points.iter().map(|&p| (p, None)).collect();
        for round in 0..8 {
            let mut updates = Vec::new();
            for entry in scored.iter_mut() {
                if rng() % 3 == 0 {
                    let new_score = entry.1.unwrap_or(0) + 1 + rng() % 40;
                    entry.1 = Some(new_score);
                    updates.push(ScoreUpdate { point: entry.0, score: new_score });
                }
            }
            tree.update_batch(&updates);
            for _ in 0..60 {
                let qx = rng() % 160;
                let qy = rng() % 160;
                assert_eq!(
                    tree.dominant_max(qx, qy),
                    brute(&scored, qx, qy),
                    "round {round} query ({qx},{qy})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in the structure")]
    fn unknown_point_update_panics() {
        let mut r = RangeVeb::new(&[Point2 { x: 1, y: 1 }]);
        r.update_one(ScoreUpdate { point: Point2 { x: 9, y: 9 }, score: 3 });
    }

    #[test]
    #[should_panic(expected = "duplicate points")]
    fn duplicate_points_rejected() {
        RangeVeb::new(&[Point2 { x: 2, y: 2 }, Point2 { x: 2, y: 2 }]);
    }
}
