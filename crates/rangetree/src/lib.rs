//! Parallel range tree for 2D *dominant-max* queries (Section 4.1 of the
//! paper).
//!
//! The weighted-LIS algorithm (Algorithm 2) needs a structure over a static
//! set of 2D points `(x, y)`, each carrying a mutable *score* (its `dp`
//! value), that answers
//!
//! > `DominantMax(qx, qy)` — the maximum score among all points with
//! > `x < qx` and `y < qy`
//!
//! and accepts batched score updates (`Update(B)`), where each point's score
//! is written exactly once over the lifetime of the algorithm and scores
//! only ever increase from their initial value of `0`.
//!
//! The structure here is the classic range tree in its canonical-node form:
//! points are sorted by `(x, y)`; an implicit, contiguously-laid-out segment
//! tree over that order forms the outer tree, and every outer node stores
//! the `y` values of its points in sorted order together with a Fenwick tree
//! over prefix maxima of their scores.  A dominant-max query decomposes the
//! `x < qx` prefix into `O(log n)` canonical nodes and performs one
//! `O(log n)` prefix-max query in each, for `O(log² n)` per query — the
//! bound of Theorem 4.1.  Score updates walk the `O(log n)` outer nodes that
//! contain the point and update each node's Fenwick tree with an atomic
//! `fetch_max`, so a whole batch of updates runs in parallel without locks
//! (scores only grow, and `max` is commutative and associative, so the
//! result is identical to any sequential order).

use plis_primitives::par::{maybe_join, par_for_each_chunk, GRAIN};
use plis_primitives::{DomMaxCounters, DomMaxStats};
use std::sync::atomic::{AtomicU64, Ordering};

/// A 2D point; `x` and `y` are the coordinates used by dominance queries
/// (for WLIS: `x` is the rank of the input value, `y` the input index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point2 {
    /// First coordinate (compared with `<` against the query's `qx`).
    pub x: u64,
    /// Second coordinate (compared with `<` against the query's `qy`).
    pub y: u64,
}

/// A score update for a point that must already be in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreUpdate {
    /// The point whose score changes.
    pub point: Point2,
    /// Its new score; must be at least the current score (scores are
    /// monotone in the WLIS algorithm).
    pub score: u64,
}

/// One canonical (outer-tree) node: a contiguous range of the x-sorted point
/// order, its points' `y` values in increasing order, and a max-Fenwick tree
/// over their scores in that `y` order.
struct NodeData {
    /// Range `[lo, hi)` of x-sorted positions covered by this node.
    lo: usize,
    hi: usize,
    /// `y` coordinates of the covered points, sorted increasingly.
    ys: Vec<u64>,
    /// Fenwick tree (1-based) over prefix maxima of the scores, indexed in
    /// the order of `ys`.  Atomic so a batch of updates can run in parallel.
    fenwick: Vec<AtomicU64>,
}

impl NodeData {
    fn new(lo: usize, hi: usize, ys: Vec<u64>) -> Self {
        let len = ys.len();
        NodeData { lo, hi, ys, fenwick: (0..=len).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Raise the score at `pos` (0-based position in `ys`) to at least `score`.
    fn raise(&self, pos: usize, score: u64) {
        let mut i = pos + 1;
        while i < self.fenwick.len() {
            self.fenwick[i].fetch_max(score, Ordering::Relaxed);
            i += i & i.wrapping_neg();
        }
    }

    /// Maximum score among the first `count` positions of `ys`.
    fn prefix_max(&self, count: usize) -> u64 {
        let mut best = 0u64;
        let mut i = count.min(self.ys.len());
        while i > 0 {
            best = best.max(self.fenwick[i].load(Ordering::Relaxed));
            i -= i & i.wrapping_neg();
        }
        best
    }
}

/// The dominant-max range tree (the `RangeStruct` of Algorithm 2).
pub struct RangeMaxTree {
    n: usize,
    /// x coordinates of the points in (x, y)-sorted order.
    xs: Vec<u64>,
    /// y coordinates of the points in the same order.
    ys_by_pos: Vec<u64>,
    /// Outer segment tree in contiguous-subtree layout (`2n − 1` nodes).
    nodes: Vec<NodeData>,
    /// Telemetry totals (observational only; counted at the
    /// [`DominantMaxStore`](plis_primitives::DominantMaxStore) boundary).
    counters: DomMaxCounters,
}

impl RangeMaxTree {
    /// Build the tree over `points` (all scores start at 0).
    /// `O(n log n)` work, polylogarithmic span.
    ///
    /// # Panics
    /// Panics if two points are identical.
    pub fn new(points: &[Point2]) -> Self {
        let n = points.len();
        if n == 0 {
            return RangeMaxTree {
                n,
                xs: Vec::new(),
                ys_by_pos: Vec::new(),
                nodes: Vec::new(),
                counters: DomMaxCounters::new(),
            };
        }
        let mut order: Vec<(u64, u64)> = points.iter().map(|p| (p.x, p.y)).collect();
        plis_primitives::par_sort_unstable(&mut order);
        assert!(order.windows(2).all(|w| w[0] != w[1]), "duplicate points are not supported");
        let xs: Vec<u64> = order.iter().map(|p| p.0).collect();
        let ys_by_pos: Vec<u64> = order.iter().map(|p| p.1).collect();
        let mut nodes: Vec<Option<NodeData>> = Vec::new();
        nodes.resize_with(2 * n - 1, || None);
        build(&mut nodes, &ys_by_pos, 0, n);
        let nodes: Vec<NodeData> =
            nodes.into_iter().map(|n| n.expect("build fills every node")).collect();
        RangeMaxTree { n, xs, ys_by_pos, nodes, counters: DomMaxCounters::new() }
    }

    /// Rough heap footprint of the tree in bytes (vector capacities of the
    /// canonical nodes; used by the engine's memory accounting).
    pub fn approx_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|node| {
                std::mem::size_of::<NodeData>()
                    + node.ys.capacity() * std::mem::size_of::<u64>()
                    + node.fenwick.capacity() * std::mem::size_of::<AtomicU64>()
            })
            .sum();
        std::mem::size_of::<Self>()
            + self.xs.capacity() * std::mem::size_of::<u64>()
            + self.ys_by_pos.capacity() * std::mem::size_of::<u64>()
            + node_bytes
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `DominantMax(qx, qy)`: maximum score among points with `x < qx` and
    /// `y < qy`; `0` if there is none (matching the WLIS convention that a
    /// missing predecessor contributes `max(0, ·)`).  `O(log² n)`.
    pub fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        // Points with x < qx form a prefix of the sorted order.
        let prefix = self.xs.partition_point(|&x| x < qx);
        if prefix == 0 {
            return 0;
        }
        self.query_node(0, prefix, qy)
    }

    fn query_node(&self, node_idx: usize, prefix: usize, qy: u64) -> u64 {
        let node = &self.nodes[node_idx];
        if prefix >= node.hi - node.lo {
            // Whole node lies inside the x-range: one Fenwick prefix query.
            let count = node.ys.partition_point(|&y| y < qy);
            return node.prefix_max(count);
        }
        // Node is partially covered; it must be internal (a leaf covered at
        // all is covered fully and caught above).
        let left_idx = node_idx + 1;
        let left_size = self.nodes[left_idx].hi - self.nodes[left_idx].lo;
        let right_idx = node_idx + 2 * left_size;
        if prefix <= left_size {
            self.query_node(left_idx, prefix, qy)
        } else {
            let left = self.query_node(left_idx, left_size, qy);
            let right = self.query_node(right_idx, prefix - left_size, qy);
            left.max(right)
        }
    }

    /// `Update(B)`: raise the scores of a batch of points, in parallel.
    /// Each point must exist in the tree; each update costs `O(log² n)`
    /// (an `O(log n)` Fenwick update in each of the `O(log n)` outer nodes
    /// containing the point).
    ///
    /// # Panics
    /// Panics if an update refers to a point that is not in the tree.
    pub fn update_batch(&self, updates: &[ScoreUpdate]) {
        // Atomic fetch_max makes per-point updates commutative, so chunks
        // can run in any interleaving with identical results.
        par_for_each_chunk(updates, |_, chunk| {
            for u in chunk {
                self.update_one(u);
            }
        });
    }

    /// Raise the score of a single point.
    pub fn update_one(&self, update: &ScoreUpdate) {
        let pos = self.position_of(update.point).unwrap_or_else(|| {
            panic!("point ({}, {}) is not in the tree", update.point.x, update.point.y)
        });
        // Walk the root-to-leaf path; every node on it contains the point.
        let mut node_idx = 0usize;
        loop {
            let node = &self.nodes[node_idx];
            let y_pos = node.ys.partition_point(|&y| y < update.point.y);
            debug_assert_eq!(node.ys[y_pos], update.point.y);
            node.raise(y_pos, update.score);
            if node.hi - node.lo == 1 {
                break;
            }
            let left_idx = node_idx + 1;
            let left = &self.nodes[left_idx];
            if pos < left.hi {
                node_idx = left_idx;
            } else {
                node_idx += 2 * (left.hi - left.lo);
            }
        }
    }

    /// The current score of a point (0 if never raised), or `None` if the
    /// point is not in the tree.
    pub fn score_of(&self, point: Point2) -> Option<u64> {
        let pos = self.position_of(point)?;
        // Walk to the leaf node holding exactly this point.
        let mut node_idx = 0usize;
        loop {
            let node = &self.nodes[node_idx];
            if node.hi - node.lo == 1 {
                return Some(node.prefix_max(1));
            }
            let left_idx = node_idx + 1;
            let left = &self.nodes[left_idx];
            if pos < left.hi {
                node_idx = left_idx;
            } else {
                node_idx += 2 * (left.hi - left.lo);
            }
        }
    }

    /// Position of a point in the (x, y)-sorted order, if present.
    fn position_of(&self, point: Point2) -> Option<usize> {
        // Points with the same x form a contiguous run sorted by y.
        let lo = self.xs.partition_point(|&x| x < point.x);
        let hi = self.xs.partition_point(|&x| x <= point.x);
        self.ys_by_pos[lo..hi].binary_search(&point.y).ok().map(|i| lo + i)
    }
}

/// [`RangeMaxTree`] as a pluggable dominant-max store: the adapter between
/// this crate's typed API ([`Point2`], [`ScoreUpdate`]) and the bare-tuple
/// interface the generic WLIS drivers consume.  Adding another backend
/// means writing exactly this impl next to the new structure.
impl plis_primitives::DominantMaxStore for RangeMaxTree {
    fn build(points: &[(u64, u64)]) -> Self {
        let pts: Vec<Point2> = points.iter().map(|&(x, y)| Point2 { x, y }).collect();
        RangeMaxTree::new(&pts)
    }
    fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        self.counters.count_query();
        RangeMaxTree::dominant_max(self, qx, qy)
    }
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]) {
        self.counters.count_writeback(updates.len());
        let ups: Vec<ScoreUpdate> = updates
            .iter()
            .map(|&(x, y, score)| ScoreUpdate { point: Point2 { x, y }, score })
            .collect();
        RangeMaxTree::update_batch(self, &ups);
    }
    fn name() -> &'static str {
        "range-tree"
    }
    fn stats(&self) -> DomMaxStats {
        self.counters.snapshot()
    }
}

/// Recursively build the contiguous-layout outer tree over positions
/// `[lo, hi)`; each node's `ys` is produced by merging its children's.
fn build(nodes: &mut [Option<NodeData>], ys_by_pos: &[u64], lo: usize, hi: usize) {
    let m = hi - lo;
    debug_assert_eq!(nodes.len(), 2 * m - 1);
    if m == 1 {
        nodes[0] = Some(NodeData::new(lo, hi, vec![ys_by_pos[lo]]));
        return;
    }
    let half = m.div_ceil(2);
    let (this, rest) = nodes.split_first_mut().expect("non-empty");
    let (left, right) = rest.split_at_mut(2 * half - 1);
    maybe_join(
        m,
        GRAIN,
        || build(left, ys_by_pos, lo, lo + half),
        || build(right, ys_by_pos, lo + half, hi),
    );
    let lys = &left[0].as_ref().expect("left built").ys;
    let rys = &right[0].as_ref().expect("right built").ys;
    let merged = plis_primitives::parallel_merge(lys, rys);
    *this = Some(NodeData::new(lo, hi, merged));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_dominant_max(points: &[(Point2, u64)], qx: u64, qy: u64) -> u64 {
        points.iter().filter(|(p, _)| p.x < qx && p.y < qy).map(|(_, s)| *s).max().unwrap_or(0)
    }

    #[test]
    fn empty_tree() {
        let t = RangeMaxTree::new(&[]);
        assert!(t.is_empty());
        assert_eq!(t.dominant_max(10, 10), 0);
    }

    #[test]
    fn single_point() {
        let p = Point2 { x: 5, y: 7 };
        let t = RangeMaxTree::new(&[p]);
        assert_eq!(t.dominant_max(6, 8), 0); // score still 0
        t.update_one(&ScoreUpdate { point: p, score: 42 });
        assert_eq!(t.dominant_max(6, 8), 42);
        assert_eq!(t.dominant_max(5, 8), 0); // x < 5 excludes the point
        assert_eq!(t.dominant_max(6, 7), 0); // y < 7 excludes the point
        assert_eq!(t.score_of(p), Some(42));
        assert_eq!(t.score_of(Point2 { x: 0, y: 0 }), None);
    }

    #[test]
    fn paper_figure_9_example() {
        // Points (x, y, score) from Figure 9; query (10, 6) must return 8,
        // achieved by (6, 1, 8) — the best score in the lower-left region.
        let raw = [
            (3u64, 8u64, 4u64),
            (16, 1, 7),
            (17, 2, 2),
            (12, 2, 5),
            (6, 7, 8),
            (13, 4, 3),
            (14, 7, 3),
            (1, 5, 7),
            (3, 2, 5),
            (6, 1, 8),
            (7, 4, 3),
            (16, 10, 12),
        ];
        let points: Vec<Point2> = raw.iter().map(|&(x, y, _)| Point2 { x, y }).collect();
        let t = RangeMaxTree::new(&points);
        let updates: Vec<ScoreUpdate> =
            raw.iter().map(|&(x, y, s)| ScoreUpdate { point: Point2 { x, y }, score: s }).collect();
        t.update_batch(&updates);
        assert_eq!(t.dominant_max(10, 6), 8);
        // And exhaustive spot checks against brute force.
        let scored: Vec<(Point2, u64)> =
            raw.iter().map(|&(x, y, s)| (Point2 { x, y }, s)).collect();
        for qx in 0..20 {
            for qy in 0..12 {
                assert_eq!(
                    t.dominant_max(qx, qy),
                    brute_dominant_max(&scored, qx, qy),
                    "query ({qx}, {qy})"
                );
            }
        }
    }

    #[test]
    fn incremental_updates_match_brute_force() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 800usize;
        // Unique (x, y) pairs.
        let mut points: Vec<Point2> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while points.len() < n {
            let p = Point2 { x: rng() % 200, y: rng() % 200 };
            if seen.insert((p.x, p.y)) {
                points.push(p);
            }
        }
        let tree = RangeMaxTree::new(&points);
        let mut scored: Vec<(Point2, u64)> = points.iter().map(|&p| (p, 0)).collect();
        for round in 0..10 {
            // Raise the scores of a pseudo-random subset.
            let mut updates = Vec::new();
            for entry in scored.iter_mut() {
                if rng() % 4 == 0 {
                    entry.1 += rng() % 50;
                    updates.push(ScoreUpdate { point: entry.0, score: entry.1 });
                }
            }
            tree.update_batch(&updates);
            for _ in 0..50 {
                let qx = rng() % 220;
                let qy = rng() % 220;
                assert_eq!(
                    tree.dominant_max(qx, qy),
                    brute_dominant_max(&scored, qx, qy),
                    "round {round}, query ({qx}, {qy})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate points")]
    fn duplicate_points_rejected() {
        RangeMaxTree::new(&[Point2 { x: 1, y: 1 }, Point2 { x: 1, y: 1 }]);
    }

    #[test]
    #[should_panic(expected = "not in the tree")]
    fn update_of_unknown_point_panics() {
        let t = RangeMaxTree::new(&[Point2 { x: 1, y: 1 }]);
        t.update_one(&ScoreUpdate { point: Point2 { x: 2, y: 2 }, score: 1 });
    }

    #[test]
    fn scores_only_grow_under_fetch_max() {
        let p = Point2 { x: 3, y: 3 };
        let t = RangeMaxTree::new(&[p, Point2 { x: 1, y: 1 }]);
        t.update_one(&ScoreUpdate { point: p, score: 10 });
        // A lower update must not lower the observable score.
        t.update_one(&ScoreUpdate { point: p, score: 4 });
        assert_eq!(t.dominant_max(10, 10), 10);
    }

    #[test]
    fn query_boundaries_are_strict() {
        // Dominance is strict in both coordinates.
        let pts = [Point2 { x: 2, y: 2 }, Point2 { x: 4, y: 4 }];
        let t = RangeMaxTree::new(&pts);
        t.update_batch(&[
            ScoreUpdate { point: pts[0], score: 5 },
            ScoreUpdate { point: pts[1], score: 9 },
        ]);
        assert_eq!(t.dominant_max(2, 10), 0);
        assert_eq!(t.dominant_max(3, 2), 0);
        assert_eq!(t.dominant_max(3, 3), 5);
        assert_eq!(t.dominant_max(5, 5), 9);
        assert_eq!(t.dominant_max(4, 5), 5);
    }
}
