//! Streaming sessions: serve LIS queries over data that arrives in batches,
//! for many independent sessions at once, with the `plis-engine` subsystem.
//!
//! Run with: `cargo run --release --example streaming_sessions`

use plis::prelude::*;
use plis::workloads::streaming::{session_fleet, StreamPattern};

fn main() {
    // --- One session, step by step -------------------------------------
    // A sensor emits readings in small bursts; we keep the LIS of the whole
    // history live, without ever recomputing from scratch.
    let mut session = StreamingLis::new(1 << 16, Backend::Veb);
    for (day, burst) in
        [&[520u64, 310, 450][..], &[260, 610, 100][..], &[390, 440, 700][..]].iter().enumerate()
    {
        let report = session.ingest(burst);
        println!(
            "day {day}: +{} readings, LIS {} -> {} ({:?} path)",
            report.ingested, report.lis_before, report.lis_after, report.path
        );
    }
    // Ranks are exact dp values: element 8 (value 700) ends a LIS of length 4.
    assert_eq!(session.ranks(), &[1, 1, 2, 1, 3, 1, 2, 3, 4]);
    let lis: Vec<u64> = session.reconstruct_lis().iter().map(|&i| session.values()[i]).collect();
    println!("one LIS of the stream: {lis:?}");
    assert_eq!(lis.len(), 4);

    // Value-domain queries go straight to the vEB tail set.
    println!("longest run strictly below 450: {}", session.lis_length_below(450));

    // --- A fleet of sessions, tick by tick ------------------------------
    // The heavy-traffic shape: many sessions, batched arrivals, one
    // parallel `execute` call per tick.  Lifecycle is explicit — the
    // first tick creates every session, the rest are strict appends.
    let (fleet, universe) = session_fleet(6, 30_000, 512, 7);
    let mut engine =
        Engine::new(EngineConfig { universe, backend: Backend::Auto, ..EngineConfig::default() });
    let setup: Tick = fleet
        .iter()
        .fold(Tick::new(), |tick, (name, _)| tick.create(name.as_str(), SessionKind::Unweighted));
    assert!(engine.execute(&setup).fully_applied());
    let rounds = fleet.iter().map(|(_, batches)| batches.len()).max().unwrap();
    for round in 0..rounds {
        let tick: Tick = fleet
            .iter()
            .filter_map(|(name, batches)| {
                batches.get(round).map(|b| (name.as_str(), Op::Append(b.clone())))
            })
            .collect();
        let outcome = engine.execute(&tick);
        assert!(outcome.fully_applied());
    }
    println!("fleet after {rounds} ticks:");
    for id in engine.session_ids() {
        let session = engine.session(id.as_str()).unwrap();
        println!(
            "  {id:<16} n = {:>6}  LIS = {:>5}  backend = {}",
            session.len(),
            session.lis_length(),
            session.backend_name()
        );
    }

    // The streaming answer equals the offline oracle on the full history.
    let perm = StreamPattern::Permutation.generate(30_000, 7 + 2);
    let (oracle_ranks, oracle_k) = lis_ranks_u64(&perm);
    let streamed = engine.session("permutation-2").unwrap();
    assert_eq!(streamed.lis_length(), oracle_k);
    assert_eq!(streamed.ranks(), oracle_ranks.as_slice());
    println!("streamed ranks match the offline oracle (k = {oracle_k})");

    // --- Weighted sessions in the same engine ----------------------------
    // Algorithm 2 served as live traffic: (value, weight) batches flow
    // through the same ticks, and dp scores are exact after every batch.
    let wtick = Tick::new()
        .create("orders", SessionKind::Weighted)
        .append_weighted("orders", vec![(100, 5), (300, 2), (200, 9)])
        .append_weighted("orders", vec![(250, 4), (400, 1)]);
    let outcome = engine.execute(&wtick);
    assert!(outcome.fully_applied());
    assert_eq!(outcome.weighted_sessions_touched, 1);
    let orders = engine.weighted_session("orders").unwrap();
    // Best chain: 100 (5) < 200 (9) < 250 (4) < 400 (1) = 19.
    assert_eq!(engine.best_score("orders"), Some(19));
    println!(
        "weighted session 'orders': scores = {:?}, best = {} ({} store)",
        orders.scores(),
        orders.best_score(),
        orders.backend_name()
    );
    let offline = wlis_rangetree(orders.values(), orders.weights());
    assert_eq!(orders.scores(), offline.as_slice());
    println!("weighted scores match the offline Algorithm-2 oracle");
}
