//! The streaming query plane: live rank / top-k / certificate reads served
//! from the same sessions that are still ingesting, batched per tick and
//! answered shard-parallel — with every answer equal to the offline
//! algorithms run on the full history.
//!
//! Run with: `cargo run --release --example streaming_queries`

use plis::prelude::*;
use plis::workloads::streaming::{mixed_session_fleet, round_robin_ticks};

fn main() {
    // --- One session: every query kind --------------------------------
    let mut engine = Engine::with_universe(1 << 16);
    engine.execute(
        &Tick::new()
            .create("sensor", SessionKind::Unweighted)
            .append("sensor", vec![520u64, 310, 450, 260, 610]),
    );

    // Read-only traffic takes &self: a ReadTick of query batches.
    let tick = ReadTick::new().query(
        "sensor",
        vec![
            Query::RankOf(4),   // dp value of the 5th reading
            Query::CountAt(1),  // how many readings start a fresh run
            Query::TopK(3),     // the three deepest runs
            Query::Certificate, // one actual LIS
        ],
    );
    let outcome = engine.execute_read(&tick);
    let answers = &outcome.outcomes[0].1.as_ref().unwrap().answers;
    assert_eq!(answers[0], QueryAnswer::Rank(Some(3))); // 310 < 450 < 610
    assert_eq!(answers[1], QueryAnswer::Count(3)); // 520, 310, 260
    println!("sensor answers: {answers:?}");
    let QueryAnswer::Certificate(cert) = &answers[3] else { panic!("expected a certificate") };
    assert_eq!(cert.claimed, 3);
    assert!(cert.indices.windows(2).all(|w| w[0] < w[1]));
    println!("certificate: indices {:?} claim a LIS of length {}", cert.indices, cert.claimed);

    // --- Reads interleaved with writes, in one tick --------------------
    // A query op sees every op before it in the same tick.
    let mixed = Tick::new().append("sensor", vec![700, 100]).query("sensor", Query::RankOf(5));
    let outcome = engine.execute(&mixed);
    let after_write = outcome.outcomes[1].1.as_ref().unwrap().as_answered().unwrap();
    assert_eq!(after_write.answers[0], QueryAnswer::Rank(Some(4))); // ... 610 < 700
    println!("mid-tick read sees the write before it: {:?}", after_write.answers[0]);

    // --- Typed errors instead of silent drops --------------------------
    // Queries against absent sessions (and appends, in strict ticks) fail
    // their own op; the rest of the tick is served normally.
    let outcome = engine.execute_read(&ReadTick::new().query("ghost", Query::Certificate));
    assert_eq!(outcome.outcomes[0].1, Err(OpError::UnknownSession));
    println!("absent session fails typed: {:?}", outcome.outcomes[0].1);

    // --- Weighted sessions answer the same queries ---------------------
    engine.execute(
        &Tick::new()
            .create("orders", SessionKind::Weighted)
            .append_weighted("orders", vec![(100u64, 5u64), (300, 2), (200, 9), (400, 1)]),
    );
    let outcome = engine
        .execute_read(&ReadTick::new().query("orders", vec![Query::TopK(2), Query::Certificate]));
    let answers = &outcome.outcomes[0].1.as_ref().unwrap().answers;
    // Best chain: 100 (5) < 200 (9) < 400 (1) = 15.
    assert_eq!(answers[0], QueryAnswer::TopK(vec![(3, 15), (2, 14)]));
    let QueryAnswer::Certificate(cert) = &answers[1] else { panic!("expected a certificate") };
    assert_eq!(cert.claimed, 15);
    println!("weighted certificate: {:?} with total weight {}", cert.indices, cert.claimed);

    // --- Heavy traffic: a read/write-mixed fleet -----------------------
    // The workload generator interleaves reads into every stream; its
    // ReadWriteOps map 1:1 onto command-plane Ops and the engine serves
    // whole mixed ticks shard-parallel.
    let (fleet, universe) = mixed_session_fleet(6, 20_000, 256, 0.3, 8, 42);
    let mut engine = Engine::with_universe(universe);
    let mut served = 0usize;
    let mut written = 0usize;
    for tick in round_robin_ticks(&fleet, |s| s.to_string()) {
        let ops: Tick = tick
            .into_iter()
            // The canonical ReadWriteOp -> Op conversion lives in
            // plis-engine, so consumers never hand-map specs.
            .map(|(id, op)| (id, Op::from(op)))
            .collect::<Tick>()
            .auto_create();
        let outcome = engine.execute(&ops);
        assert!(outcome.fully_applied());
        served += outcome.total_queries;
        written += outcome.total_ingested;
    }
    println!("fleet: {written} elements written, {served} queries served live");

    // Spot-check one session against the offline oracles on its history.
    let id = engine.session_ids().into_iter().next().unwrap();
    let session = engine.session(id.as_str()).unwrap();
    let (oracle_ranks, oracle_k) = lis_ranks_u64(session.values());
    assert_eq!(session.ranks(), oracle_ranks.as_slice());
    assert_eq!(session.reconstruct_lis().len() as u32, oracle_k);
    println!("session {id}: live answers match the offline oracle (k = {oracle_k})");
}
