//! The streaming query plane: live rank / top-k / certificate reads served
//! from the same sessions that are still ingesting, batched per tick and
//! answered shard-parallel — with every answer equal to the offline
//! algorithms run on the full history.
//!
//! Run with: `cargo run --release --example streaming_queries`

use plis::prelude::*;
use plis::workloads::streaming::{mixed_session_fleet, round_robin_ticks, ReadWriteOp};

fn main() {
    // --- One session: every query kind --------------------------------
    let mut engine = Engine::with_universe(1 << 16);
    engine.ingest_tick(vec![(SessionId::from("sensor"), vec![520u64, 310, 450, 260, 610])]);

    let tick = vec![(
        SessionId::from("sensor"),
        QueryBatch::from(vec![
            Query::RankOf(4),   // dp value of the 5th reading
            Query::CountAt(1),  // how many readings start a fresh run
            Query::TopK(3),     // the three deepest runs
            Query::Certificate, // one actual LIS
        ]),
    )];
    let report = engine.query_tick(&tick);
    let answers = &report.reports[0].1.answers;
    assert_eq!(answers[0], QueryAnswer::Rank(Some(3))); // 310 < 450 < 610
    assert_eq!(answers[1], QueryAnswer::Count(3)); // 520, 310, 260
    println!("sensor answers: {answers:?}");
    let QueryAnswer::Certificate(cert) = &answers[3] else { panic!("expected a certificate") };
    assert_eq!(cert.claimed, 3);
    assert!(cert.indices.windows(2).all(|w| w[0] < w[1]));
    println!("certificate: indices {:?} claim a LIS of length {}", cert.indices, cert.claimed);

    // --- Reads interleaved with writes, in one tick --------------------
    // A query slot sees every write slot before it in the same tick.
    let mixed: Vec<(SessionId, TickOp)> = vec![
        (SessionId::from("sensor"), TickOp::Ingest(TickBatch::Plain(vec![700, 100]))),
        (SessionId::from("sensor"), TickOp::Query(Query::RankOf(5).into())),
    ];
    let report = engine.ingest_query_tick(&mixed);
    let after_write = report.reports[1].1.as_query().unwrap();
    assert_eq!(after_write.answers[0], QueryAnswer::Rank(Some(4))); // ... 610 < 700
    println!("mid-tick read sees the write before it: {:?}", after_write.answers[0]);

    // --- Weighted sessions answer the same queries ---------------------
    engine.ingest_weighted_tick(vec![(
        SessionId::from("orders"),
        vec![(100u64, 5u64), (300, 2), (200, 9), (400, 1)],
    )]);
    let tick = vec![(
        SessionId::from("orders"),
        QueryBatch::from(vec![Query::TopK(2), Query::Certificate]),
    )];
    let report = engine.query_tick(&tick);
    let answers = &report.reports[0].1.answers;
    // Best chain: 100 (5) < 200 (9) < 400 (1) = 15.
    assert_eq!(answers[0], QueryAnswer::TopK(vec![(3, 15), (2, 14)]));
    let QueryAnswer::Certificate(cert) = &answers[1] else { panic!("expected a certificate") };
    assert_eq!(cert.claimed, 15);
    println!("weighted certificate: {:?} with total weight {}", cert.indices, cert.claimed);

    // --- Heavy traffic: a read/write-mixed fleet -----------------------
    // The workload generator interleaves reads into every stream; the
    // engine serves whole mixed ticks shard-parallel.
    let (fleet, universe) = mixed_session_fleet(6, 20_000, 256, 0.3, 8, 42);
    let mut engine = Engine::with_universe(universe);
    let mut served = 0usize;
    let mut written = 0usize;
    for tick in round_robin_ticks(&fleet, |s| SessionId::from(s)) {
        let ops: Vec<(SessionId, TickOp)> = tick
            .into_iter()
            .map(|(id, op)| {
                let op = match op {
                    ReadWriteOp::Write(batch) => TickOp::Ingest(TickBatch::Plain(batch)),
                    // The canonical QuerySpec -> Query conversion lives in
                    // plis-engine, so consumers never hand-map specs.
                    ReadWriteOp::Read(specs) => {
                        TickOp::Query(QueryBatch::new(specs.into_iter().map(Query::from).collect()))
                    }
                };
                (id, op)
            })
            .collect();
        let report = engine.ingest_query_tick(&ops);
        served += report.total_queries;
        written += report.total_ingested;
    }
    println!("fleet: {written} elements written, {served} queries served live");

    // Spot-check one session against the offline oracles on its history.
    let id = engine.session_ids().into_iter().next().unwrap();
    let session = engine.session(id.as_str()).unwrap();
    let (oracle_ranks, oracle_k) = lis_ranks_u64(session.values());
    assert_eq!(session.ranks(), oracle_ranks.as_slice());
    assert_eq!(session.reconstruct_lis().len() as u32, oracle_k);
    println!("session {id}: live answers match the offline oracle (k = {oracle_k})");
}
