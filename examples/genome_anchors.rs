//! Genome-alignment anchor chaining with LIS.
//!
//! Whole-genome aligners (MUMmer, BLAST-based chainers — the applications
//! the paper's introduction cites) find short exact matches ("anchors")
//! between a query and a reference and then keep the largest set of anchors
//! that appear in the same order in both sequences.  When anchors are sorted
//! by their query position, that is exactly the longest increasing
//! subsequence of their reference positions; weighting each anchor by its
//! match length turns it into a weighted LIS.
//!
//! Run with: `cargo run --release --example genome_anchors`

use plis::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A match between query position `q` and reference position `r` of length `len`.
#[derive(Debug, Clone, Copy)]
struct Anchor {
    q: u64,
    r: u64,
    len: u64,
}

/// Generate synthetic anchors: a mostly-collinear backbone (the true
/// alignment) plus random spurious matches.
fn synthetic_anchors(n_true: usize, n_noise: usize, seed: u64) -> Vec<Anchor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let genome_len = 10_000_000u64;
    let mut anchors = Vec::with_capacity(n_true + n_noise);
    // Backbone: reference position tracks query position with small indels.
    let mut q = 0u64;
    let mut r = 0u64;
    for _ in 0..n_true {
        q += rng.gen_range(50..150);
        r += rng.gen_range(50..150);
        anchors.push(Anchor { q, r, len: rng.gen_range(20..200) });
    }
    // Noise: uniformly random pairs.
    for _ in 0..n_noise {
        anchors.push(Anchor {
            q: rng.gen_range(0..genome_len),
            r: rng.gen_range(0..genome_len),
            len: rng.gen_range(20..60),
        });
    }
    anchors.sort_by_key(|a| (a.q, a.r));
    anchors
}

fn main() {
    let anchors = synthetic_anchors(40_000, 160_000, 7);
    println!("{} anchors ({} expected backbone)", anchors.len(), 40_000);

    // Anchors are sorted by query position; chaining keeps a subsequence
    // whose reference positions strictly increase.
    let ref_positions: Vec<u64> = anchors.iter().map(|a| a.r).collect();

    // Unweighted chain: maximum number of collinear anchors.
    let chain = lis_indices(&ref_positions);
    println!("longest collinear chain: {} anchors", chain.len());

    // Weighted chain: maximise total matched bases instead of anchor count.
    let weights: Vec<u64> = anchors.iter().map(|a| a.len).collect();
    let dp = wlis_rangetree(&ref_positions, &weights);
    let best_bases = dp.iter().max().copied().unwrap_or(0);
    println!("best chain by matched bases: {best_bases} bases");

    // Sanity: the parallel results agree with the sequential baselines.
    let (_, k_seq) = seq_bs(&ref_positions);
    assert_eq!(chain.len() as u32, k_seq);
    let dp_seq = seq_avl(&ref_positions, &weights);
    assert_eq!(dp.iter().max(), dp_seq.iter().max());
    println!("parallel and sequential baselines agree");

    // The chain must be strictly increasing in both coordinates.
    for w in chain.windows(2) {
        assert!(anchors[w[0]].q <= anchors[w[1]].q);
        assert!(anchors[w[0]].r < anchors[w[1]].r);
    }
    println!("chain validated: anchors are collinear in query and reference");
}
