//! Self-relative scaling of the parallel LIS algorithm (a miniature of
//! Figure 8 of the paper).
//!
//! Runs Algorithm 1 on a line-pattern and a range-pattern input with a
//! fixed LIS length, on 1, 2, 4, … up to all available cores, and prints
//! the speedup relative to the single-core run together with the
//! sequential Seq-BS time for reference.
//!
//! Run with: `cargo run --release --example scaling`
//! Environment: `PLIS_EXAMPLE_N` overrides the input size (default 5,000,000).

use plis::prelude::*;
use std::time::Instant;

fn time<F: FnMut() -> R, R>(mut f: F) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn main() {
    let n: usize =
        std::env::var("PLIS_EXAMPLE_N").ok().and_then(|s| s.parse().ok()).unwrap_or(5_000_000);
    let target_k = 1_000u64;

    let line = with_target_rank(n, target_k, 1);
    let range = range_pattern(n, target_k, 2);
    let (_, k_line) = seq_bs(&line);
    let (_, k_range) = seq_bs(&range);
    println!("n = {n}, line-pattern k = {k_line}, range-pattern k = {k_range}");

    let (t_seq_line, _) = time(|| seq_bs_length(&line));
    let (t_seq_range, _) = time(|| seq_bs_length(&range));
    println!("Seq-BS: line {t_seq_line:.3}s, range {t_seq_range:.3}s");

    let max_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut threads = 1usize;
    let mut base_line = 0.0f64;
    let mut base_range = 0.0f64;
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10}",
        "threads", "line (s)", "range (s)", "su-line", "su-range"
    );
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let (t_line, k1) = pool.install(|| time(|| lis_ranks_u64(&line).1));
        let (t_range, k2) = pool.install(|| time(|| lis_ranks_u64(&range).1));
        assert_eq!(k1, k_line);
        assert_eq!(k2, k_range);
        if threads == 1 {
            base_line = t_line;
            base_range = t_range;
        }
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>10.2} {:>10.2}",
            threads,
            t_line,
            t_range,
            base_line / t_line,
            base_range / t_range
        );
        if threads == max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
}
