//! The engine's command plane, end to end: one `Op` vocabulary for
//! appends, reads, and session lifecycle; one `Tick` builder; one
//! `Engine::execute` for write/mixed traffic and one `Engine::execute_read`
//! for read-only traffic — with every op resolving to a typed
//! `Result<OpOutput, OpError>` instead of panicking or silently dropping.
//!
//! Run with: `cargo run --release --example command_plane`

use plis::prelude::*;

fn main() {
    let mut engine = Engine::new(EngineConfig { universe: 1 << 16, ..EngineConfig::default() });

    // --- One tick, every command kind ----------------------------------
    // Lifecycle is explicit: sessions are created by ops, in tick order,
    // next to the traffic that feeds them.  A query op sees every earlier
    // op of the same tick addressed to its session.
    let tick = Tick::new()
        .create("telemetry", SessionKind::Unweighted)
        .create("orders", SessionKind::Weighted)
        .append("telemetry", vec![520u64, 310, 450, 260, 610])
        .append_weighted("orders", vec![(100u64, 5u64), (300, 2), (200, 9)])
        .query("telemetry", vec![Query::RankOf(4), Query::TopK(2)])
        .append("telemetry", vec![700u64])
        .query("telemetry", Query::Certificate);
    let outcome = engine.execute(&tick);
    assert!(outcome.fully_applied());
    println!(
        "tick: {} ops -> {} created, {} ingested, {} answered, {} worker thread(s)",
        outcome.outcomes.len(),
        outcome.sessions_created,
        outcome.total_ingested,
        outcome.total_queries,
        outcome.worker_threads,
    );

    // Per-op outputs are typed: the mid-tick query saw three readings...
    let mid = outcome.outcomes[4].1.as_ref().unwrap().as_answered().unwrap();
    assert_eq!(mid.answers[0], QueryAnswer::Rank(Some(3))); // 310 < 450 < 610
                                                            // ...and the certificate after the next append claims one more.
    let OpOutput::Answered(last) = outcome.outcomes[6].1.as_ref().unwrap() else { panic!() };
    let QueryAnswer::Certificate(cert) = &last.answers[0] else { panic!() };
    assert_eq!(cert.claimed, 4); // 310 < 450 < 610 < 700
    println!("mid-tick rank {:?}, end-of-tick certificate {:?}", mid.answers[0], cert.indices);

    // --- Malformed ops degrade per op, with real errors -----------------
    // One tick carrying every fault: unknown session, kind mismatch,
    // universe overflow, create-twice.  Healthy neighbours still land.
    let tick = Tick::new()
        .append("ghost", vec![1, 2, 3])
        .append_weighted("telemetry", vec![(1, 1)])
        .append("telemetry", vec![1 << 16])
        .create("orders", SessionKind::Unweighted)
        .append("telemetry", vec![655u64]);
    let outcome = engine.execute(&tick);
    assert_eq!(outcome.failed_ops, 4);
    for (id, error) in outcome.errors() {
        println!("  rejected op on '{id}': {error}");
    }
    assert_eq!(outcome.outcomes[0].1, Err(OpError::UnknownSession));
    assert_eq!(
        outcome.outcomes[1].1,
        Err(OpError::KindMismatch {
            session: SessionKind::Unweighted,
            batch: SessionKind::Weighted
        })
    );
    assert_eq!(
        outcome.outcomes[2].1,
        Err(OpError::UniverseOverflow { value: 1 << 16, universe: 1 << 16 })
    );
    assert_eq!(outcome.outcomes[3].1, Err(OpError::SessionExists { kind: SessionKind::Weighted }));
    // The healthy last op landed: 610 < 655 < 700 keeps the LIS at 4,
    // and the rejected ops never touched the session.
    assert!(outcome.outcomes[4].1.is_ok());
    assert_eq!(engine.lis_length("telemetry"), Some(4));
    assert_eq!(engine.session("telemetry").unwrap().len(), 7);

    // --- Read-only ticks take &self -------------------------------------
    let reads = ReadTick::new()
        .query("telemetry", vec![Query::CountAt(1), Query::TopK(1)])
        .query("orders", Query::Certificate)
        .query("ghost", Query::RankOf(0));
    let outcome = engine.execute_read(&reads);
    assert_eq!(outcome.sessions_queried, 2);
    assert_eq!(outcome.sessions_missing, 1);
    let QueryAnswer::Certificate(best) = &outcome.outcomes[1].1.as_ref().unwrap().answers[0] else {
        panic!()
    };
    // Best chain: 100 (5) < 200 (9) = 14.
    assert_eq!(best.claimed, 14);
    println!(
        "read tick: {} queries answered, best order chain {:?} (weight {})",
        outcome.total_queries, best.indices, best.claimed
    );

    // --- Lifecycle rides the tick, in order ------------------------------
    // Remove + re-create + refill in one tick: the re-created session
    // starts from scratch, deterministically, whatever the pool size.
    let tick = Tick::new()
        .remove("telemetry")
        .create("telemetry", SessionKind::Unweighted)
        .append("telemetry", vec![42u64, 47]);
    let outcome = engine.execute(&tick);
    assert!(outcome.fully_applied());
    assert_eq!(outcome.sessions_removed, 1);
    assert_eq!(engine.lis_length("telemetry"), Some(2));
    println!(
        "churn tick: removed {}, created {}, LIS restarted at {:?}",
        outcome.sessions_removed,
        outcome.sessions_created,
        engine.lis_length("telemetry")
    );
}
