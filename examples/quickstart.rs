//! Quickstart: compute LIS ranks, reconstruct one LIS, and run the weighted
//! variant, on a small synthetic input.
//!
//! Run with: `cargo run --release --example quickstart`

use plis::prelude::*;

fn main() {
    // The running example of the paper (Figure 2 / Figure 3).
    let input = vec![52u64, 31, 45, 26, 61, 10, 39, 44];
    println!("input           : {input:?}");

    // Algorithm 1: every object's dp value (the length of the LIS ending
    // there) and the overall LIS length k.
    let (ranks, k) = lis_ranks_u64(&input);
    println!("dp values       : {ranks:?}");
    println!("LIS length k    : {k}");

    // Appendix A: an actual longest increasing subsequence.
    let lis = lis_indices(&input);
    let lis_values: Vec<u64> = lis.iter().map(|&i| input[i]).collect();
    println!("one LIS (indices): {lis:?}");
    println!("one LIS (values) : {lis_values:?}");
    assert_eq!(lis.len(), k as usize);

    // Algorithm 2: weighted LIS.  With unit weights the best dp value equals
    // the LIS length; with a heavy weight on 61 the heavy chain wins.
    let unit = vec![1u64; input.len()];
    let dp_unit = wlis_rangetree(&input, &unit);
    println!("weighted dp (unit weights) : {dp_unit:?}");

    let mut heavy = unit.clone();
    heavy[4] = 100; // the object with value 61
    let dp_heavy = wlis_rangetree(&input, &heavy);
    println!("weighted dp (heavy 61)     : {dp_heavy:?}");
    assert_eq!(*dp_heavy.iter().max().unwrap(), 102); // 26 -> 45 -> 61 with weights 1+1+100

    // A larger random input: the parallel algorithm agrees with the
    // sequential Seq-BS baseline.
    let big = with_target_rank(1_000_000, 1_000, 42);
    let (par_ranks, par_k) = lis_ranks_u64(&big);
    let (seq_ranks, seq_k) = seq_bs(&big);
    assert_eq!(par_k, seq_k);
    assert_eq!(par_ranks, seq_ranks);
    println!("n = 1e6 input: LIS length {par_k} (parallel and sequential agree)");
}
