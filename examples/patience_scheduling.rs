//! Weighted job selection with WLIS, plus a direct use of the parallel vEB
//! tree as an ordered-set index.
//!
//! Scenario: a stream of job offers arrives over time; offer `i` has a
//! deadline `d_i` and a payout `w_i`.  A worker can accept a subsequence of
//! offers whose deadlines strictly increase (each accepted job must finish
//! before the next deadline).  Maximising the total payout of the accepted
//! offers is a weighted LIS over the deadlines with the payouts as weights.
//!
//! The second half of the example uses the parallel vEB tree directly as a
//! calendar index: batch-inserting the accepted deadlines, batch-deleting
//! the ones that get cancelled, and range-reporting a week of work.
//!
//! Run with: `cargo run --release --example patience_scheduling`

use plis::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 500_000usize;
    let mut rng = StdRng::seed_from_u64(2024);

    // Deadlines drift upwards but with heavy jitter, payouts are skewed.
    let deadlines: Vec<u64> = (0..n).map(|i| (i as u64) / 4 + rng.gen_range(0..50_000)).collect();
    let payouts: Vec<u64> = (0..n).map(|_| 1 + rng.gen_range(0..100u64).pow(2) / 100).collect();

    // Weighted LIS: the best total payout over offers with increasing deadlines.
    let dp = wlis_rangetree(&deadlines, &payouts);
    let best = dp.iter().max().copied().unwrap_or(0);
    println!("offers: {n}");
    println!("best schedule payout (weighted LIS): {best}");

    // Compare against the plain LIS (count of accepted offers, ignoring payouts).
    let (_, k) = lis_ranks_u64(&deadlines);
    println!("most offers acceptable (unweighted LIS length): {k}");

    // Cross-check on a subsample against the sequential AVL baseline.
    let sample = 50_000usize;
    let dp_seq = seq_avl(&deadlines[..sample], &payouts[..sample]);
    let dp_par = wlis_rangetree(&deadlines[..sample], &payouts[..sample]);
    assert_eq!(dp_seq, dp_par);
    println!("parallel WLIS matches Seq-AVL on a {sample}-offer prefix");

    // --- Using the parallel vEB tree as a calendar index -----------------
    // Accept the offers on one optimal unweighted schedule and index their
    // deadlines in a vEB tree.
    let accepted = lis_indices(&deadlines);
    let mut accepted_deadlines: Vec<u64> = accepted.iter().map(|&i| deadlines[i]).collect();
    accepted_deadlines.dedup();
    let universe = deadlines.iter().max().copied().unwrap_or(0) + 1;
    let mut calendar = VebTree::new(universe);
    calendar.batch_insert(&accepted_deadlines);
    println!("calendar holds {} accepted deadlines", calendar.len());

    // Report one "week" of upcoming deadlines with the parallel range query.
    let week_start = universe / 2;
    let week_end = week_start + 7 * 1440; // seven days of minutes
    let this_week = calendar.range(week_start, week_end);
    println!("deadlines in [{week_start}, {week_end}]: {}", this_week.len());

    // A burst of cancellations: batch-delete every deadline in that window.
    calendar.batch_delete(&this_week);
    assert!(calendar.range(week_start, week_end).is_empty());
    println!("cancelled {} deadlines; the window is now clear", this_week.len());

    // The next deadline after the cleared window is found in O(log log U).
    if let Some(next) = calendar.succ(week_end.min(universe - 1)) {
        println!("next deadline after the window: {next}");
    }
}
